package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/metadata"
)

// Backpressure selects what happens to a FOLLOW subscriber whose live
// queue overflows (DESIGN.md §11 policy matrix).
type Backpressure int

const (
	// DropLagging drops the overflowing subscription: the follower
	// drains what was queued, then terminates with ErrLagging. This is
	// the repository's native behaviour — cheap, bounded, lossy for the
	// slow consumer only.
	DropLagging Backpressure = iota
	// SpillToDisk diverts the overflow to a per-follower temp file and
	// replays it in order, bounded by the tenant's disk quota. Slow
	// consumers trade disk for completeness; a consumer slower than the
	// append rate for long enough to exhaust the quota still terminates
	// with ErrLagging.
	SpillToDisk
)

// String names the policy for flags and logs.
func (b Backpressure) String() string {
	switch b {
	case SpillToDisk:
		return "spill"
	default:
		return "drop"
	}
}

// ParseBackpressure maps a flag value to its policy.
func ParseBackpressure(s string) (Backpressure, error) {
	switch s {
	case "drop", "drop-lagging", "":
		return DropLagging, nil
	case "spill", "spill-to-disk":
		return SpillToDisk, nil
	}
	return 0, fmt.Errorf("service: unknown backpressure policy %q (want drop|spill)", s)
}

// spillChunk is the pending-buffer size at which Divert flushes to the
// file. Divert runs under the repository's write lock, so the common
// case must be an in-memory append; one buffered write per chunk keeps
// the lock hold time amortised.
const spillChunk = 256 << 10

// diskSpill implements metadata.TailOverflow over a per-follower temp
// file: Divert appends length-prefixed JSON frames (buffered, flushed
// in chunks), TryNext replays them in order. Frames live in three
// places, consumed oldest-first: the file's unread span, then the
// pending write buffer. Once the reader fully catches up the file is
// truncated so a bursty follower reclaims its disk between bursts.
//
// charge is the tenant's quota hook: called with the byte delta every
// time disk usage changes. A charge failure propagates out of Divert,
// terminating the subscription with the tenant's quota error.
type diskSpill struct {
	mu      sync.Mutex
	f       *os.File
	pending []byte // encoded frames not yet written to the file
	wOff    int64  // file size (all flushed frames)
	rOff    int64  // file read offset
	rbuf    []byte // decoded-from-file frames awaiting TryNext
	rpos    int    // consumption offset into rbuf
	ready   chan struct{}
	charged int64 // bytes currently charged to the tenant
	charge  func(delta int64) error
	closed  bool
}

// newDiskSpill creates the spill's backing file eagerly — in the HTTP
// handler, outside the repository lock — so Divert never pays file
// creation under the lock. charge may be nil (no accounting).
func newDiskSpill(dir string, charge func(delta int64) error) (*diskSpill, error) {
	f, err := os.CreateTemp(dir, "follow-spill-*.log")
	if err != nil {
		return nil, fmt.Errorf("service: creating spill file: %w", err)
	}
	// Unlink immediately: the fd keeps the file alive, and a crashed
	// server leaks no spill files.
	os.Remove(f.Name())
	if charge == nil {
		charge = func(int64) error { return nil }
	}
	return &diskSpill{f: f, ready: make(chan struct{}, 1), charge: charge}, nil
}

// Divert implements metadata.TailOverflow. It runs under the
// repository's write lock: the common case appends to an in-memory
// buffer; every spillChunk bytes it issues one buffered file write.
func (d *diskSpill) Divert(rec metadata.Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("service: spill closed: %w", metadata.ErrLagging)
	}
	payload, err := json.Marshal(ToWire(rec))
	if err != nil {
		return fmt.Errorf("service: encoding spill frame: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	need := int64(len(hdr) + len(payload))
	// Reserve quota before buffering so the tenant's bound covers
	// pending bytes too, not just what reached the file.
	if err := d.charge(need); err != nil {
		return err
	}
	d.charged += need
	d.pending = append(d.pending, hdr[:]...)
	d.pending = append(d.pending, payload...)
	if len(d.pending) >= spillChunk {
		if err := d.flushLocked(); err != nil {
			return err
		}
	}
	d.notifyLocked()
	return nil
}

// flushLocked appends the pending buffer to the file. Caller holds mu.
func (d *diskSpill) flushLocked() error {
	if len(d.pending) == 0 {
		return nil
	}
	n, err := d.f.WriteAt(d.pending, d.wOff)
	if err != nil {
		return fmt.Errorf("service: writing spill file: %w", err)
	}
	d.wOff += int64(n)
	d.pending = d.pending[:0]
	return nil
}

// notifyLocked wakes a parked consumer (capacity-1 pattern; see the
// TailOverflow contract). Caller holds mu.
func (d *diskSpill) notifyLocked() {
	select {
	case d.ready <- struct{}{}:
	default:
	}
}

// TryNext implements metadata.TailOverflow: pop the oldest diverted
// record without blocking. File frames precede pending frames, so when
// the read buffer runs dry it refills from the file's unread span
// first and takes the pending buffer only once the file is consumed.
func (d *diskSpill) TryNext() (metadata.Record, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return metadata.Record{}, false, fmt.Errorf("service: spill closed: %w", metadata.ErrLagging)
	}
	if d.rpos >= len(d.rbuf) {
		if err := d.refillLocked(); err != nil {
			return metadata.Record{}, false, err
		}
		if d.rpos >= len(d.rbuf) {
			return metadata.Record{}, false, nil
		}
	}
	if len(d.rbuf)-d.rpos < 4 {
		return metadata.Record{}, false, fmt.Errorf("service: truncated spill frame header")
	}
	n := int(binary.BigEndian.Uint32(d.rbuf[d.rpos:]))
	start := d.rpos + 4
	if start+n > len(d.rbuf) {
		return metadata.Record{}, false, fmt.Errorf("service: truncated spill frame (%d of %d bytes)", len(d.rbuf)-start, n)
	}
	var w WireRecord
	if err := json.Unmarshal(d.rbuf[start:start+n], &w); err != nil {
		return metadata.Record{}, false, fmt.Errorf("service: decoding spill frame: %w", err)
	}
	d.rpos = start + n
	rec, err := FromWire(w)
	if err != nil {
		return metadata.Record{}, false, err
	}
	rec.ID = w.ID // preserve the repository-assigned ID across the spill
	// Return the quota as frames are consumed, and reclaim the file
	// once the reader has fully caught up.
	d.charge(-int64(4 + n))
	d.charged -= int64(4 + n)
	if d.rpos >= len(d.rbuf) && d.rOff >= d.wOff && len(d.pending) == 0 {
		d.rbuf = d.rbuf[:0]
		d.rpos = 0
		d.truncateLocked()
	}
	return rec, true, nil
}

// refillLocked loads the next batch of frames into the read buffer:
// the file's unread span first, else the pending buffer. Caller holds
// mu.
func (d *diskSpill) refillLocked() error {
	d.rbuf = d.rbuf[:0]
	d.rpos = 0
	if d.rOff < d.wOff {
		span := d.wOff - d.rOff
		if span > spillChunk*2 {
			span = spillChunk * 2
		}
		buf := make([]byte, span)
		n, err := d.f.ReadAt(buf, d.rOff)
		if err != nil && int64(n) != span {
			return fmt.Errorf("service: reading spill file: %w", err)
		}
		// Keep only whole frames; the remainder is picked up next refill.
		whole := 0
		for whole+4 <= n {
			fl := int(binary.BigEndian.Uint32(buf[whole:]))
			if whole+4+fl > n {
				break
			}
			whole += 4 + fl
		}
		if whole == 0 && d.rOff+int64(n) < d.wOff {
			return fmt.Errorf("service: spill frame exceeds refill window")
		}
		d.rbuf = append(d.rbuf, buf[:whole]...)
		d.rOff += int64(whole)
		return nil
	}
	if len(d.pending) > 0 {
		d.rbuf = append(d.rbuf, d.pending...)
		d.pending = d.pending[:0]
	}
	return nil
}

// truncateLocked reclaims the file after a full catch-up. Caller holds
// mu; best-effort (a failure just leaves dead bytes until Close).
func (d *diskSpill) truncateLocked() {
	if d.wOff == 0 {
		return
	}
	if err := d.f.Truncate(0); err == nil {
		d.wOff = 0
		d.rOff = 0
	}
}

// Ready implements metadata.TailOverflow.
func (d *diskSpill) Ready() <-chan struct{} { return d.ready }

// Close releases the file and returns any outstanding quota charge.
// Idempotent.
func (d *diskSpill) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.charged > 0 {
		d.charge(-d.charged)
		d.charged = 0
	}
	err := d.f.Close()
	return err
}
