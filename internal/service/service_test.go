// Black-box tests of the dieventd HTTP surface, driven through the real
// retrying client (dievent/client) so the wire contract is exercised
// from both ends.
package service_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/dievent/client"
	"repro/internal/metadata"
	"repro/internal/service"
	"repro/internal/vfs"
)

// testServer bundles a Server, its HTTP listener, and a client factory.
type testServer struct {
	svc  *service.Server
	http *httptest.Server
	root string
}

func newTestServer(t *testing.T, cfg service.Config) *testServer {
	t.Helper()
	if cfg.Root == "" {
		cfg.Root = t.TempDir()
	}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(svc)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Drain(ctx) // kills follow streams so Close doesn't hang on them
		hs.Close()
	})
	return &testServer{svc: svc, http: hs, root: cfg.Root}
}

func (ts *testServer) client(t *testing.T, tenant string, cfg client.Config) *client.Client {
	t.Helper()
	cfg.Base = ts.http.URL
	cfg.Tenant = tenant
	c, err := client.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func ingestRecord(i int, label string) client.Record {
	return client.Record{
		Kind:     metadata.KindObservation,
		Frame:    i,
		FrameEnd: i + 1,
		Time:     time.Duration(i) * 33 * time.Millisecond,
		Person:   i % 4,
		Other:    -1,
		Label:    label,
		Value:    float64(i),
	}
}

func batch(lo, hi int, label string) []client.Record {
	recs := make([]client.Record, 0, hi-lo)
	for i := lo; i < hi; i++ {
		recs = append(recs, ingestRecord(i, label))
	}
	return recs
}

// TestIngestQueryFollowRoundTrip is the basic life of a tenant: batch
// ingest, one-shot query (with order and limit), then a FOLLOW stream
// that sees history and live appends across the seam.
func TestIngestQueryFollowRoundTrip(t *testing.T) {
	ts := newTestServer(t, service.Config{})
	c := ts.client(t, "rig-1", client.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := c.Append(ctx, batch(0, 200, "smile")); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(ctx, batch(200, 300, "frown")); err != nil {
		t.Fatal(err)
	}

	recs, err := c.Query(ctx, "label = 'smile'", client.QueryOpts{Order: "id"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 200 {
		t.Fatalf("query returned %d records, want 200", len(recs))
	}
	for i, rec := range recs {
		if rec.Frame != i || rec.Label != "smile" {
			t.Fatalf("record %d: frame %d label %q", i, rec.Frame, rec.Label)
		}
	}
	limited, err := c.Query(ctx, "label = 'smile'", client.QueryOpts{Limit: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 7 {
		t.Fatalf("limited query returned %d, want 7", len(limited))
	}

	// FOLLOW: history (300 frames of 'smile'+'frown' filtered to
	// person P1 — queries are 1-based, stored Person is 0-based) then
	// live appends.
	fs, err := c.Follow(ctx, "person = 1")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	histWant := 0
	for i := 0; i < 75; i++ { // frames ≡ 0 mod 4 in [0,300)
		rec, err := fs.Next()
		if err != nil {
			t.Fatalf("follow history Next(%d): %v", i, err)
		}
		if rec.Frame != histWant {
			t.Fatalf("follow history frame %d, want %d", rec.Frame, histWant)
		}
		histWant += 4
	}
	if err := c.Append(ctx, batch(300, 320, "wave")); err != nil {
		t.Fatal(err)
	}
	for want := 300; want < 320; want += 4 {
		rec, err := fs.Next()
		if err != nil {
			t.Fatalf("follow live Next: %v", err)
		}
		if rec.Frame != want || rec.Label != "wave" {
			t.Fatalf("follow live frame %d label %q, want %d \"wave\"", rec.Frame, rec.Label, want)
		}
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 320 {
		t.Fatalf("stats records = %d, want 320", st.Records)
	}
	if st.Followers != 1 {
		t.Fatalf("stats followers = %d, want 1", st.Followers)
	}
}

// TestTenantIsolation: two tenants, disjoint data, each sees only its
// own.
func TestTenantIsolation(t *testing.T) {
	ts := newTestServer(t, service.Config{})
	ctx := context.Background()
	a := ts.client(t, "rig-a", client.Config{})
	b := ts.client(t, "rig-b", client.Config{})
	if err := a.Append(ctx, batch(0, 10, "only-a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(ctx, batch(0, 5, "only-b")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Query(ctx, "label = 'only-a'", client.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("tenant b sees %d of tenant a's records", len(got))
	}
	got, err = a.Query(ctx, "label = 'only-a'", client.QueryOpts{})
	if err != nil || len(got) != 10 {
		t.Fatalf("tenant a query: %d records, err %v", len(got), err)
	}
}

// TestAppendQuota429: a dry token bucket answers 429 with a
// Retry-After, and the client maps exhausted retries to ErrOverloaded.
func TestAppendQuota429(t *testing.T) {
	ts := newTestServer(t, service.Config{AppendRate: 0.001, AppendBurst: 5})
	ctx := context.Background()

	// Raw request first: assert status and header shape.
	body, _ := json.Marshal([]service.WireRecord{{Kind: "observation", Label: "x", Frame: ptr(1)}})
	u := ts.http.URL + "/v1/tenants/rig-1/records"
	for i := 0; i < 5; i++ {
		resp, err := http.Post(u, "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d within burst: HTTP %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Post(u, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota append: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// A no-retry client surfaces the overload sentinel immediately (a
	// retrying one would honour the bucket's huge Retry-After).
	c := ts.client(t, "rig-1", client.Config{MaxRetries: -1})
	err = c.Append(ctx, batch(0, 1, "x"))
	if !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("client over-quota append = %v, want ErrOverloaded", err)
	}
}

func ptr(i int) *int { return &i }

// TestFollowerCap: the per-tenant follower limit refuses the N+1th
// stream with 429 while the first stays live.
func TestFollowerCap(t *testing.T) {
	ts := newTestServer(t, service.Config{MaxFollowers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := ts.client(t, "rig-1", client.Config{MaxRetries: -1})
	if err := c.Append(ctx, batch(0, 3, "x")); err != nil {
		t.Fatal(err)
	}
	fs, err := c.Follow(ctx, "label = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Follow(ctx, "label = 'x'"); !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("second follow = %v, want ErrOverloaded (429)", err)
	}
}

// TestENOSPCDegradesNotWedges: an injected ENOSPC on the append path
// flips the tenant to service-level read-only — appends answer 507,
// queries keep serving, healthz reports degraded — instead of wedging.
func TestENOSPCDegradesNotWedges(t *testing.T) {
	ffs := vfs.NewFaultFS()
	var fail atomic.Bool
	ffs.Inject = func(n int, op vfs.Op, path string) error {
		if fail.Load() && (op == vfs.OpWrite || op == vfs.OpSync || op == vfs.OpCreate) {
			return vfs.ErrNoSpace
		}
		return nil
	}
	ts := newTestServer(t, service.Config{FS: ffs})
	ctx := context.Background()
	c := ts.client(t, "rig-1", client.Config{MaxRetries: -1})

	if err := c.Append(ctx, batch(0, 100, "ok")); err != nil {
		t.Fatal(err)
	}
	fail.Store(true)
	err := c.Append(ctx, batch(100, 200, "post-fault"))
	if !errors.Is(err, client.ErrDegraded) {
		t.Fatalf("append under ENOSPC = %v, want ErrDegraded (507)", err)
	}
	// Sticky: subsequent appends refuse immediately.
	if err := c.Append(ctx, batch(200, 201, "x")); !errors.Is(err, client.ErrDegraded) {
		t.Fatalf("append while degraded = %v, want ErrDegraded", err)
	}
	// The tenant is not wedged: reads still serve the pre-fault data.
	recs, err := c.Query(ctx, "label = 'ok'", client.QueryOpts{})
	if err != nil {
		t.Fatalf("query on degraded tenant: %v", err)
	}
	if len(recs) != 100 {
		t.Fatalf("degraded query returned %d, want 100", len(recs))
	}
	// healthz reports it honestly.
	rep, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != "degraded" {
		t.Fatalf("healthz status = %q, want degraded", rep.Status)
	}
	found := false
	for _, tn := range rep.Tenants {
		if tn.Tenant == "rig-1" {
			found = true
			if !tn.ReadOnlyDegraded {
				t.Fatal("tenant not marked read-only degraded in healthz")
			}
		}
	}
	if !found {
		t.Fatal("tenant missing from healthz")
	}
}

// TestDiskQuotaDegrades: exceeding MaxDiskBytes flips the tenant
// read-only on the next append.
func TestDiskQuotaDegrades(t *testing.T) {
	ts := newTestServer(t, service.Config{MaxDiskBytes: 8 << 10})
	ctx := context.Background()
	c := ts.client(t, "rig-1", client.Config{MaxRetries: -1})
	var degraded bool
	for i := 0; i < 100; i++ {
		err := c.Append(ctx, batch(i*100, (i+1)*100, "bulk"))
		if errors.Is(err, client.ErrDegraded) {
			degraded = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !degraded {
		t.Fatal("disk quota never tripped")
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.ReadOnlyDegraded {
		t.Fatal("stats does not report read-only degradation")
	}
	if _, err := c.Query(ctx, "label = 'bulk'", client.QueryOpts{Limit: 1}); err != nil {
		t.Fatalf("query on quota-degraded tenant: %v", err)
	}
}

// TestQueryTimeoutPropagates: the ?timeout= deadline reaches the
// executor through QueryOpts.Ctx. A microscopic timeout on a large
// scan surfaces as a mid-stream error envelope, not a hang.
func TestQueryTimeoutPropagates(t *testing.T) {
	ts := newTestServer(t, service.Config{})
	ctx := context.Background()
	c := ts.client(t, "rig-1", client.Config{MaxRetries: -1})
	for i := 0; i < 10; i++ {
		if err := c.Append(ctx, batch(i*1000, (i+1)*1000, "x")); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.Query(ctx, "label = 'x'", client.QueryOpts{Timeout: time.Nanosecond})
	if err == nil {
		t.Fatal("1ns-deadline query succeeded; deadline did not propagate")
	}
}

// TestDrainGraceful is the headline drain sequence: under an open
// follower with queued records, Drain (1) flips readyz to 503,
// (2) refuses new requests with 503+Retry-After, (3) terminates the
// follower with the queued records first and then a draining envelope,
// (4) seals and releases every tenant so offline Fsck is clean.
func TestDrainGraceful(t *testing.T) {
	root := t.TempDir()
	ts := newTestServer(t, service.Config{Root: root})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := ts.client(t, "rig-1", client.Config{MaxRetries: -1})
	if err := c.Append(ctx, batch(0, 50, "x")); err != nil {
		t.Fatal(err)
	}
	fs, err := c.Follow(ctx, "label = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	for i := 0; i < 50; i++ { // drain history so the stream is live
		if _, err := fs.Next(); err != nil {
			t.Fatal(err)
		}
	}
	// Queue live records the follower has NOT read yet, then drain.
	if err := c.Append(ctx, batch(50, 60, "x")); err != nil {
		t.Fatal(err)
	}
	drainDone := make(chan error, 1)
	go func() { drainDone <- ts.svc.Drain(ctx) }()

	// The killed follower first delivers the 10 queued records, in
	// order, then the draining sentinel.
	for want := 50; want < 60; want++ {
		rec, err := fs.Next()
		if err != nil {
			t.Fatalf("drain swallowed queued record %d: %v", want, err)
		}
		if rec.Frame != want {
			t.Fatalf("queued drain record frame %d, want %d", rec.Frame, want)
		}
	}
	if _, err := fs.Next(); !errors.Is(err, client.ErrDraining) {
		t.Fatalf("follower terminal error = %v, want ErrDraining", err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// New work is refused with the draining status.
	if err := c.Append(ctx, batch(60, 61, "x")); !errors.Is(err, client.ErrDraining) {
		t.Fatalf("append while draining = %v, want ErrDraining", err)
	}
	resp, err := http.Get(ts.http.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = HTTP %d, want 503", resp.StatusCode)
	}

	// Leases are released and the store sealed: offline Fsck is clean.
	rep, err := metadata.Fsck(root + "/rig-1")
	if err != nil {
		t.Fatalf("post-drain fsck: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("post-drain fsck not clean:\n%+v", rep)
	}
}

// TestIdleCloseReadOnlyCoexistence: after IdleClose the server releases
// the tenant's writer lease, an out-of-band WithReadOnly open attaches,
// and the next served request waits (WithLockWait) until the tool
// departs instead of failing.
func TestIdleCloseReadOnlyCoexistence(t *testing.T) {
	root := t.TempDir()
	ts := newTestServer(t, service.Config{Root: root, IdleClose: 50 * time.Millisecond, LockWait: 10 * time.Second})
	ctx := context.Background()
	c := ts.client(t, "rig-1", client.Config{MaxRetries: -1})
	if err := c.Append(ctx, batch(0, 10, "x")); err != nil {
		t.Fatal(err)
	}
	// Wait for the janitor to release the lease (healthz reports
	// open=false without forcing a reopen).
	deadline := time.Now().Add(10 * time.Second)
	for {
		rep, err := c.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Tenants) == 1 && !rep.Tenants[0].Open {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tenant never idle-closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Out-of-band read-only tool attaches and sees the data.
	ro, err := metadata.Open(root+"/rig-1", metadata.WithReadOnly())
	if err != nil {
		t.Fatalf("out-of-band read-only open: %v", err)
	}
	got, err := ro.Query("label = 'x'")
	if err != nil || len(got) != 10 {
		t.Fatalf("out-of-band query: %d records, err %v", len(got), err)
	}
	// A served append queues behind the reader's lease, then lands
	// once the tool departs.
	appendDone := make(chan error, 1)
	go func() { appendDone <- c.Append(ctx, batch(10, 11, "x")) }()
	time.Sleep(100 * time.Millisecond) // let the append reach the lock wait
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-appendDone; err != nil {
		t.Fatalf("append after reader departed: %v", err)
	}
}

// TestFollowSpillSlowConsumer: under SpillToDisk a consumer far slower
// than the append burst still receives every record in order — the
// overflow spills and replays instead of killing the stream.
func TestFollowSpillSlowConsumer(t *testing.T) {
	ts := newTestServer(t, service.Config{
		Backpressure: service.SpillToDisk,
		FollowBuffer: 8,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := ts.client(t, "rig-1", client.Config{MaxRetries: -1})
	fs, err := c.Follow(ctx, "label = 'burst'")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	// Burst far past the live buffer while the consumer sits idle. Pad
	// the records so the pipe's own buffering can't hide the overflow.
	const total = 20000
	for lo := 0; lo < total; lo += 1000 {
		recs := batch(lo, lo+1000, "burst")
		for i := range recs {
			recs[i].Tags = map[string]string{"pad": strings.Repeat("p", 256)}
		}
		if err := c.Append(ctx, recs); err != nil {
			t.Fatal(err)
		}
	}
	for want := 0; want < total; want++ {
		rec, err := fs.Next()
		if err != nil {
			t.Fatalf("spill follow Next(%d): %v (slow consumer should not be dropped)", want, err)
		}
		if rec.Frame != want {
			t.Fatalf("spill follow frame %d, want %d", rec.Frame, want)
		}
	}
}

// TestFollowDropLagging: same burst under DropLagging terminates the
// slow stream with the lagging sentinel instead of buffering without
// bound.
func TestFollowDropLagging(t *testing.T) {
	ts := newTestServer(t, service.Config{
		Backpressure: service.DropLagging,
		FollowBuffer: 8,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := ts.client(t, "rig-1", client.Config{MaxRetries: -1})
	fs, err := c.Follow(ctx, "label = 'burst'")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	const total = 20000
	for lo := 0; lo < total; lo += 1000 {
		recs := batch(lo, lo+1000, "burst")
		for i := range recs {
			recs[i].Tags = map[string]string{"pad": strings.Repeat("p", 256)}
		}
		if err := c.Append(ctx, recs); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	for {
		_, err := fs.Next()
		if err != nil {
			if !errors.Is(err, client.ErrLagging) {
				t.Fatalf("drop-lagging terminal = %v after %d records, want ErrLagging", err, got)
			}
			break
		}
		got++
		if got > total {
			t.Fatal("received more records than were appended")
		}
	}
	if got == total {
		t.Fatal("slow consumer received everything; overflow never fired (raise the burst?)")
	}
}

// TestBadInputs covers the 400 surface: bad tenant, bad query, bad
// batch, bad order/limit/timeout.
func TestBadInputs(t *testing.T) {
	ts := newTestServer(t, service.Config{})
	get := func(path string) int {
		resp, err := http.Get(ts.http.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	post := func(path, body string) int {
		resp, err := http.Post(ts.http.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct {
		name string
		code int
		want int
	}{
		{"bad tenant name", post("/v1/tenants/No%2FGood/records", "[]"), http.StatusBadRequest},
		{"empty batch", post("/v1/tenants/rig-1/records", "[]"), http.StatusBadRequest},
		{"malformed JSON", post("/v1/tenants/rig-1/records", "{"), http.StatusBadRequest},
		{"bad kind", post("/v1/tenants/rig-1/records", `[{"kind":"nope","label":"x"}]`), http.StatusBadRequest},
		{"missing label", post("/v1/tenants/rig-1/records", `[{"kind":"context"}]`), http.StatusBadRequest},
		{"bad query", get("/v1/tenants/rig-1/query?q=" + "%3D%3D"), http.StatusBadRequest},
		{"bad order", get("/v1/tenants/rig-1/query?q=label%20%3D%20%27x%27&order=sideways"), http.StatusBadRequest},
		{"bad limit", get("/v1/tenants/rig-1/query?q=label%20%3D%20%27x%27&limit=-2"), http.StatusBadRequest},
		{"bad timeout", get("/v1/tenants/rig-1/query?q=label%20%3D%20%27x%27&timeout=soon"), http.StatusBadRequest},
		{"bad follow query", get("/v1/tenants/rig-1/follow?q="), http.StatusBadRequest},
	}
	for _, tc := range cases {
		if tc.code != tc.want {
			t.Errorf("%s: HTTP %d, want %d", tc.name, tc.code, tc.want)
		}
	}
	if got := fmt.Sprint(post("/v1/tenants/rig-1/records", `[{"kind":"observation","frame":1,"label":"x"}]`)); got != "200" {
		t.Errorf("valid append after bad inputs: HTTP %s", got)
	}
}
