package service_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/dievent/client"
	"repro/internal/metadata"
	"repro/internal/service"
	"repro/internal/vfs"
)

// soakScale returns (clients, records) for the connection-scale soak:
// the full acceptance shape (≥200 concurrent mixed clients, ≥1M
// records) normally, a proportional miniature under -short so the
// default `go test ./...` stays fast.
func soakScale() (ingest, query, follow, totalRecords int) {
	if testing.Short() {
		return 16, 8, 8, 64_000
	}
	return 100, 50, 50, 1_000_000
}

// TestServiceSoak drives hundreds of concurrent ingest/query/follow
// clients through one server over ≥1M records (scaled down under
// -short) and then verifies: every acknowledged record is queryable,
// follower streams were either complete or terminated with the
// documented lagging sentinel, the drain completes, and the store
// passes offline Fsck.
func TestServiceSoak(t *testing.T) {
	nIngest, nQuery, nFollow, totalRecords := soakScale()
	const tenants = 4
	root := t.TempDir()
	ts := newTestServer(t, service.Config{
		Root:         root,
		MaxInflight:  1024,
		AppendRate:   5_000_000, // quota is not under test here
		AppendBurst:  10_000_000,
		MaxFollowers: nFollow + 8,
		Backpressure: service.SpillToDisk,
	})
	// The full shape takes ~1 min plain but 10-15× that under the race
	// detector on a single-core runner; the deadline covers the worst.
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Minute)
	defer cancel()

	perIngest := totalRecords / nIngest
	const batchSize = 2000 // few round trips per client: the soak floor is per-record cost
	var acked atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, nIngest+nQuery+nFollow)

	// Ingest fleet: each client owns a disjoint frame range within its
	// tenant so completeness is checkable per range.
	for i := 0; i < nIngest; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("rig-%d", i%tenants)
			c := ts.client(t, tenant, client.Config{MaxRetries: 6, Backoff: 5 * time.Millisecond})
			base := i * perIngest
			for lo := 0; lo < perIngest; lo += batchSize {
				hi := lo + batchSize
				if hi > perIngest {
					hi = perIngest
				}
				if err := c.Append(ctx, batch(base+lo, base+hi, "soak")); err != nil {
					errCh <- fmt.Errorf("ingest %d: %w", i, err)
					return
				}
				acked.Add(int64(hi - lo))
			}
		}(i)
	}

	// Query fleet: steady mixed reads while ingest runs. This is a
	// connection-scale soak — many live client connections at a
	// realistic per-connection rate — not a query throughput race:
	// unpaced hot-looping readers simply starve the single-core race
	// build of the ingest the soak measures. Each round uses ID order +
	// limit (the executor's streaming limit pushdown stops after the
	// matches) so per-query cost stays flat as the store grows; every
	// 16th round runs frame-ordered over a bounded frame window so the
	// sort path and the §9 zone-map pruning stay exercised under
	// concurrency.
	queryCtx, queryCancel := context.WithCancel(ctx)
	queryPace := 500 * time.Millisecond
	if testing.Short() {
		queryPace = 50 * time.Millisecond
	}
	for i := 0; i < nQuery; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("rig-%d", i%tenants)
			c := ts.client(t, tenant, client.Config{MaxRetries: 6, Backoff: 5 * time.Millisecond})
			for n := 0; queryCtx.Err() == nil; n++ {
				q := "label = 'soak' AND value >= 100"
				opts := client.QueryOpts{Limit: 20, Order: "id"}
				if n%16 == 15 {
					lo := (i*7919 + n*997) % (nIngest * perIngest)
					q = fmt.Sprintf("label = 'soak' AND frame >= %d AND frame < %d", lo, lo+2000)
					opts = client.QueryOpts{Limit: 20, Order: "frame"}
				}
				_, err := c.Query(queryCtx, q, opts)
				if err != nil && queryCtx.Err() == nil {
					errCh <- fmt.Errorf("query %d: %w", i, err)
					return
				}
				select {
				case <-time.After(queryPace):
				case <-queryCtx.Done():
				}
			}
		}(i)
	}

	// Follow fleet: live subscribers that must see ID-ordered streams;
	// a slow one may legitimately end with ErrLagging (spill quota) but
	// never with a gap or reordering. Each follower watches a bounded
	// frame window in the middle of ingest client i's range (client i
	// writes to this follower's tenant because nIngest ≡ 0 mod tenants)
	// — the window arrives live, mid-soak, through the tail feed, but a
	// follower doesn't have to consume its tenant's entire feed: with
	// every record fanned out to every follower with a per-record
	// flush, the read side would again starve the ingest under -race.
	for i := 0; i < nFollow; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("rig-%d", i%tenants)
			c := ts.client(t, tenant, client.Config{MaxRetries: 6, Backoff: 5 * time.Millisecond})
			lo := i*perIngest + perIngest/2
			w := perIngest / 4
			if w > 5000 {
				w = 5000
			}
			fs, err := c.Follow(queryCtx, fmt.Sprintf("label = 'soak' AND frame >= %d AND frame < %d", lo, lo+w))
			if err != nil {
				if queryCtx.Err() == nil {
					errCh <- fmt.Errorf("follow %d subscribe: %w", i, err)
				}
				return
			}
			defer fs.Close()
			var lastID uint64
			for {
				rec, err := fs.Next()
				if err != nil {
					ok := errors.Is(err, client.ErrLagging) ||
						errors.Is(err, client.ErrDraining) ||
						queryCtx.Err() != nil
					if !ok {
						errCh <- fmt.Errorf("follow %d: %w", i, err)
					}
					return
				}
				if rec.ID <= lastID {
					errCh <- fmt.Errorf("follow %d: ID %d after %d (reorder/dup)", i, rec.ID, lastID)
					return
				}
				lastID = rec.ID
			}
		}(i)
	}

	ingestAndQueriesDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(ingestAndQueriesDone)
	}()
	// Let queries and follows run while ingest completes, then stop
	// the read fleets (follows end via queryCancel's request-context
	// teardown).
	waitIngested := func() {
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for acked.Load() < int64(nIngest)*int64(perIngest) {
			select {
			case <-ctx.Done():
				t.Fatalf("soak timed out with %d/%d records acked", acked.Load(), totalRecords)
			case err := <-errCh:
				t.Fatal(err)
			case <-tick.C:
			}
		}
	}
	waitIngested()
	queryCancel()
	select {
	case <-ingestAndQueriesDone:
	case <-ctx.Done():
		t.Fatal("fleets did not wind down")
	}
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Completeness: every acked record is queryable, per tenant.
	want := make(map[string]int)
	for i := 0; i < nIngest; i++ {
		want[fmt.Sprintf("rig-%d", i%tenants)] += perIngest
	}
	for tenant, n := range want {
		c := ts.client(t, tenant, client.Config{})
		st, err := c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Records != n {
			t.Errorf("tenant %s: %d records stored, want %d", tenant, st.Records, n)
		}
	}

	// Drain and verify the stores offline.
	if err := ts.svc.Drain(ctx); err != nil {
		t.Fatalf("post-soak drain: %v", err)
	}
	for tenant := range want {
		rep, err := metadata.Fsck(root + "/" + tenant)
		if err != nil {
			t.Fatalf("fsck %s: %v", tenant, err)
		}
		if !rep.Clean() {
			t.Errorf("fsck %s not clean:\n%+v", tenant, rep)
		}
	}
}

// TestServiceSoakUnderFaults runs a smaller mixed soak on a FaultFS
// that starts injecting ENOSPC partway through: the acceptance
// contract is that injected exhaustion surfaces as degraded health and
// 507s — never a wedged tenant (reads keep answering throughout).
func TestServiceSoakUnderFaults(t *testing.T) {
	ffs := vfs.NewFaultFS()
	var failing atomic.Bool
	ffs.Inject = func(n int, op vfs.Op, path string) error {
		if failing.Load() && (op == vfs.OpWrite || op == vfs.OpSync || op == vfs.OpCreate) {
			return vfs.ErrNoSpace
		}
		return nil
	}
	ts := newTestServer(t, service.Config{
		FS:          ffs,
		MaxInflight: 256,
		AppendRate:  5_000_000,
		AppendBurst: 10_000_000,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	const writers = 8
	const readers = 8
	var wg sync.WaitGroup
	var degradedSeen atomic.Int64
	var readFailures atomic.Int64
	stop := make(chan struct{})

	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := ts.client(t, "rig-1", client.Config{MaxRetries: -1})
			for lo := i * 100_000; ; lo += 100 {
				select {
				case <-stop:
					return
				default:
				}
				err := c.Append(ctx, batch(lo, lo+100, "faulty"))
				switch {
				case err == nil:
				case errors.Is(err, client.ErrDegraded):
					degradedSeen.Add(1)
				default:
					// Anything else (besides a test teardown race) is a
					// wedge/5xx and fails the soak.
					if ctx.Err() == nil {
						t.Errorf("writer %d: %v", i, err)
					}
					return
				}
			}
		}(i)
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := ts.client(t, "rig-1", client.Config{MaxRetries: 2, Backoff: time.Millisecond})
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Query(ctx, "label = 'faulty'", client.QueryOpts{Limit: 10}); err != nil {
					readFailures.Add(1)
					if ctx.Err() == nil {
						t.Errorf("reader %d: %v", i, err)
					}
					return
				}
			}
		}(i)
	}

	time.Sleep(200 * time.Millisecond) // healthy phase
	failing.Store(true)                // pull the disk out
	// Wait until the degradation propagates to every writer.
	deadline := time.Now().Add(30 * time.Second)
	for degradedSeen.Load() < writers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d writers saw the degradation", degradedSeen.Load(), writers)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if readFailures.Load() != 0 {
		t.Fatalf("%d read failures during the fault window (tenant wedged?)", readFailures.Load())
	}

	// healthz tells the truth.
	c := ts.client(t, "rig-1", client.Config{})
	rep, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != "degraded" {
		t.Fatalf("healthz after ENOSPC = %q, want degraded", rep.Status)
	}
}
