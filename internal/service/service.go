package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metadata"
	"repro/internal/vfs"
)

// ErrDraining is the terminal error handed to every live follower and
// refused request while the server drains (SIGTERM). Clients should
// reconnect to another instance or retry after the restart.
var ErrDraining = errors.New("service: server draining")

// Config tunes a Server. The zero value of every field has a usable
// default; only Root is required.
type Config struct {
	// Root is the directory under which each tenant's repository lives
	// (Root/<tenant>). Required.
	Root string
	// FS, when non-nil, replaces the OS filesystem for every tenant
	// repository (fault injection via vfs.FaultFS). Follower spill
	// files always use the real OS temp machinery.
	FS vfs.FS
	// RepoOpts is appended to every tenant repository open.
	RepoOpts []metadata.Option

	// MaxInflight bounds concurrently admitted requests across all
	// tenants (default 256). Excess load is refused with 429 +
	// Retry-After rather than queued without bound. FOLLOW streams
	// release their admission slot once upgraded to streaming — they
	// are bounded by MaxFollowers instead.
	MaxInflight int
	// AppendRate is the per-tenant token-bucket refill rate in
	// records/second (default 50000). AppendBurst is the bucket
	// capacity (default 2×AppendRate). A batched append takes one
	// token per record.
	AppendRate  float64
	AppendBurst int
	// MaxFollowers caps open FOLLOW streams per tenant (default 64;
	// negative = unlimited).
	MaxFollowers int
	// MaxDiskBytes caps a tenant's disk footprint — repository
	// segments plus live follower spill (0 = unlimited). Breaching it,
	// or an ENOSPC append failure, degrades the tenant to read-only:
	// appends are refused with 507 while reads continue and healthz
	// reports the degradation.
	MaxDiskBytes int64
	// Backpressure selects the follower overflow policy (DropLagging
	// default).
	Backpressure Backpressure
	// FollowBuffer is the per-follower live queue capacity in records
	// (default: the repository's default).
	FollowBuffer int

	// IdleClose releases a tenant's writer lease after this much idle
	// time so out-of-band WithReadOnly tools can attach (0 = never
	// close). LockWait bounds how long a request waits to take the
	// lease back from such a tool (default 5s).
	IdleClose time.Duration
	LockWait  time.Duration

	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)

	// now is a test seam for the quota clock.
	now func() time.Time
}

// Server is the dieventd service: an http.Handler serving the ingest/
// query/follow API for every tenant under its root. Create with New,
// serve with net/http, stop with Drain.
type Server struct {
	cfg Config
	mux *http.ServeMux

	inflight chan struct{}

	mu      sync.Mutex
	tenants map[string]*tenant

	draining  atomic.Bool
	drainCh   chan struct{} // closed when drain starts; followers watch it
	inFlight  sync.WaitGroup
	janitorWG sync.WaitGroup
	stop      chan struct{}
	stopOnce  sync.Once
}

// New validates cfg, applies defaults, and returns a ready Server.
func New(cfg Config) (*Server, error) {
	if cfg.Root == "" {
		return nil, errors.New("service: Config.Root is required")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256
	}
	if cfg.AppendRate <= 0 {
		cfg.AppendRate = 50000
	}
	if cfg.AppendBurst <= 0 {
		cfg.AppendBurst = int(2 * cfg.AppendRate)
	}
	if cfg.MaxFollowers == 0 {
		cfg.MaxFollowers = 64
	}
	if cfg.LockWait <= 0 {
		cfg.LockWait = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	s := &Server{
		cfg:      cfg,
		inflight: make(chan struct{}, cfg.MaxInflight),
		tenants:  make(map[string]*tenant),
		drainCh:  make(chan struct{}),
		stop:     make(chan struct{}),
	}
	s.routes()
	if cfg.IdleClose > 0 {
		s.janitorWG.Add(1)
		go s.janitor()
	}
	return s, nil
}

// tenant returns (creating on first sight) the named tenant's state.
func (s *Server) tenant(name string) (*tenant, error) {
	if !tenantNameRe.MatchString(name) {
		return nil, fmt.Errorf("%w: %q", errBadTenant, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		t = &tenant{
			name:   name,
			dir:    filepath.Join(s.cfg.Root, name),
			bucket: newTokenBucket(s.cfg.AppendRate, s.cfg.AppendBurst),
			last:   s.cfg.now(),
		}
		s.tenants[name] = t
	}
	return t, nil
}

// tenantList snapshots the registry in name order.
func (s *Server) tenantList() []*tenant {
	s.mu.Lock()
	list := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		list = append(list, t)
	}
	s.mu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].name < list[j].name })
	return list
}

// admit claims an admission slot. ok=false means the server is at
// MaxInflight and the caller should answer 429.
func (s *Server) admit() bool {
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
		return false
	}
}

// unadmit returns an admission slot.
func (s *Server) unadmit() { <-s.inflight }

// janitor periodically releases idle tenants' writer leases.
func (s *Server) janitor() {
	defer s.janitorWG.Done()
	period := s.cfg.IdleClose / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			now := s.cfg.now()
			for _, t := range s.tenantList() {
				t.closeIfIdle(now, s.cfg.IdleClose)
			}
		}
	}
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain performs the graceful-shutdown sequence (DESIGN.md §11):
//
//  1. stop admitting — readyz flips to 503, every new request is
//     refused with 503 + Retry-After;
//  2. terminate live followers with ErrDraining (each stream delivers
//     what it already queued, then a terminal "draining" envelope);
//  3. wait for in-flight requests to finish, bounded by ctx;
//  4. flush and close every tenant repository, sealing active segments
//     and releasing writer leases — after which an offline Fsck of
//     every tenant directory is clean.
//
// Idempotent; concurrent calls share the same sequence. Returns the
// first tenant-close error and ctx.Err() if in-flight requests
// outlived the deadline (repositories are still closed in that case —
// a deadline overrun degrades to a hard close, not a leak).
func (s *Server) Drain(ctx context.Context) error {
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
		close(s.stop)
	})

	done := make(chan struct{})
	go func() {
		s.inFlight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("service: drain deadline: %w", ctx.Err())
	}

	for _, t := range s.tenantList() {
		if cerr := t.shutdown(); cerr != nil && err == nil {
			err = fmt.Errorf("service: closing tenant %s: %w", t.name, cerr)
		}
	}
	s.janitorWG.Wait()
	return err
}

// noteAppendError inspects an append failure and applies the ENOSPC
// degradation contract: the tenant flips to service-level read-only
// (appends 507, reads keep working, healthz reports it) instead of
// wedging behind a disk that will keep refusing writes.
func (s *Server) noteAppendError(t *tenant, err error) {
	if isNoSpace(err) {
		t.degrade("append failed with ENOSPC")
		s.cfg.Logf("tenant %s: degraded to read-only: %v", t.name, err)
	}
}

// overQuota applies the disk-quota half of the degradation contract
// after a successful append: segments plus live spill beyond
// MaxDiskBytes flips the tenant read-only for subsequent appends.
func (s *Server) overQuota(t *tenant, repo *metadata.Repository) {
	if s.cfg.MaxDiskBytes <= 0 {
		return
	}
	st, err := repo.Stats()
	if err != nil {
		return
	}
	t.mu.Lock()
	total := st.DiskBytes + t.spill
	t.mu.Unlock()
	if total > s.cfg.MaxDiskBytes {
		t.degrade(fmt.Sprintf("disk quota exceeded (%d > %d bytes)", total, s.cfg.MaxDiskBytes))
		s.cfg.Logf("tenant %s: degraded to read-only: %d bytes > quota %d", t.name, total, s.cfg.MaxDiskBytes)
	}
}
