package core

// Equivalence suite (DESIGN.md §7): the stage-graph pipeline must
// produce byte-identical metadata records (context, raw, derived),
// layers and summaries to the retained monolithic oracle (oracle.go)
// for both vision modes, at every worker count. check.sh runs this
// under the race detector with Workers > 1.

import (
	"reflect"
	"testing"

	"repro/internal/gaze"
	"repro/internal/metadata"
	"repro/internal/scene"
)

// captureOracle runs the frozen monolith and captures everything the
// equivalence tests compare.
func captureOracle(t *testing.T, cfg Config) runResult {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.runOracle()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	var recs []metadata.Record
	res.Repo.Scan(func(r metadata.Record) bool {
		recs = append(recs, r)
		return true
	})
	return runResult{layers: res.Layers, summary: res.Summary, records: recs}
}

func assertRunsEqual(t *testing.T, want, got runResult, label string) {
	t.Helper()
	if len(want.records) == 0 {
		t.Fatalf("%s: oracle produced no records", label)
	}
	if !reflect.DeepEqual(want.records, got.records) {
		t.Errorf("%s: metadata records differ from oracle (%d vs %d records)",
			label, len(want.records), len(got.records))
	}
	if !reflect.DeepEqual(want.layers, got.layers) {
		t.Errorf("%s: layers differ from oracle", label)
	}
	if !reflect.DeepEqual(want.summary, got.summary) {
		t.Errorf("%s: summary differs from oracle", label)
	}
}

// TestStageGraphMatchesOracleGeometric is the refactor's core
// guarantee on the geometric path: the registry-driven stage graph is
// byte-identical to the frozen monolith, sequentially and on the
// worker pool.
func TestStageGraphMatchesOracleGeometric(t *testing.T) {
	cfgs := map[string]Config{
		"prototype": {
			Scenario: scene.PrototypeScenario(),
			Mode:     GeometricVision,
			Gaze:     gaze.EstimatorOptions{Seed: 11},
		},
		"noisy-truncated": {
			Scenario:     scene.PrototypeScenario(),
			Mode:         GeometricVision,
			Gaze:         gaze.EstimatorOptions{Seed: 5, GazeNoiseDeg: 6},
			EmotionNoise: 0.2,
			MaxFrames:    200,
		},
		"parse-video": {
			Scenario:   scene.PrototypeScenario(),
			Mode:       GeometricVision,
			MaxFrames:  120,
			ParseVideo: true,
		},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			oracle := captureOracle(t, cfg)
			for _, workers := range []int{1, 4} {
				wcfg := cfg
				wcfg.Workers = workers
				assertRunsEqual(t, oracle, captureRun(t, wcfg), name)
			}
		})
	}
}

// TestStageGraphMatchesOraclePixel proves the pixel stage set — the
// render → detect → track → classify chain plus cross-camera fusion —
// byte-identical to the monolith, including under the worker pool with
// two camera lanes.
func TestStageGraphMatchesOraclePixel(t *testing.T) {
	if testing.Short() {
		t.Skip("pixel vision is expensive")
	}
	cfg := Config{
		Scenario:     scene.PrototypeScenario(),
		Mode:         PixelVision,
		Gaze:         gaze.EstimatorOptions{Seed: 4},
		Classifier:   engineTestClassifier(t),
		MaxFrames:    24,
		DetectEvery:  3,
		PixelCameras: 2,
	}
	oracle := captureOracle(t, cfg)
	for _, workers := range []int{1, 4} {
		wcfg := cfg
		wcfg.Workers = workers
		assertRunsEqual(t, oracle, captureRun(t, wcfg), "pixel")
	}
}
