package core

// Attention-span analyzer — the stage-graph's proof-of-plug-in
// (DESIGN.md §7): a derived layer computed from the per-frame look-at
// matrix without touching the engine or the other stages. Enable it
// with Config.Stages = []string{"attention-span"}; it contributes
// AttentionResult to the run result and an "attention-span" /
// "attention-mean" derived record layer to the repository.

import (
	"time"

	"repro/internal/metadata"
)

// minAttentionFrames is the shortest gaze fixation reported as a span
// (12 frames ≈ 0.5 s at 25 fps, matching the eye-contact threshold).
const minAttentionFrames = 12

// AttentionSpan is one contiguous run of a participant fixating the
// same target.
type AttentionSpan struct {
	// Person is the gazer; Target the participant fixated.
	Person, Target int
	// Start and End are frame indexes, [Start, End).
	Start, End int
	// StartTime is the timestamp of Start.
	StartTime time.Duration
}

// Frames returns the span length in frames.
func (s AttentionSpan) Frames() int { return s.End - s.Start }

// AttentionStat summarises one participant's gaze persistence.
type AttentionStat struct {
	Person int
	// Spans is the number of fixations ≥ the reporting threshold.
	Spans int
	// MeanFrames is the mean fixation length.
	MeanFrames float64
	// LongestFrames is the longest fixation.
	LongestFrames int
}

// AttentionResult is the attention-span analyzer's derived layer.
type AttentionResult struct {
	Spans []AttentionSpan
	Stats []AttentionStat
}

// attentionAnalyzer accumulates per-person fixation runs from the raw
// look-at matrices. Stats accumulate incrementally as runs close, so a
// bounded stream can drain closed spans out of memory (drainClosed)
// without changing what finalize reports — the rolling variant is
// byte-identical to the end-of-run rescan on finite streams.
type attentionAnalyzer struct {
	ids    []int
	cur    []int // current target per person index; -1 = none
	start  []int // run start frame
	startT []time.Duration
	last   int
	spans  []AttentionSpan
	// emitted counts the prefix of spans already emitted live, so the
	// final record pass writes each span exactly once.
	emitted int
	// Per-person running stats, updated at close time.
	statSpans   []int
	statTotal   []int
	statLongest []int
}

func newAttentionAnalyzer(ids []int) *attentionAnalyzer {
	a := &attentionAnalyzer{
		ids:         ids,
		cur:         make([]int, len(ids)),
		start:       make([]int, len(ids)),
		startT:      make([]time.Duration, len(ids)),
		last:        -1,
		statSpans:   make([]int, len(ids)),
		statTotal:   make([]int, len(ids)),
		statLongest: make([]int, len(ids)),
	}
	for i := range a.cur {
		a.cur[i] = -1
	}
	return a
}

// push consumes one frame's matrix. The target of person i is the
// lowest-indexed participant their row marks (ties toward the lower
// ID, matching the matrix's deterministic ordering), or −1.
func (a *attentionAnalyzer) push(fa *FrameArtifacts) {
	m := fa.LookAt
	a.last = fa.Index
	for pi := range a.ids {
		target := -1
		if pi < len(m.M) {
			for j := range m.M[pi] {
				if m.M[pi][j] == 1 {
					target = m.IDs[j]
					break
				}
			}
		}
		if target == a.cur[pi] {
			continue
		}
		a.close(pi, fa.Index)
		a.cur[pi] = target
		a.start[pi] = fa.Index
		a.startT[pi] = fa.FS.Time
	}
}

// close ends person pi's open run at frame end, keeping it if long
// enough and folding it into the running stats.
func (a *attentionAnalyzer) close(pi, end int) {
	if a.cur[pi] < 0 {
		return
	}
	n := end - a.start[pi]
	if n >= minAttentionFrames {
		a.spans = append(a.spans, AttentionSpan{
			Person: a.ids[pi], Target: a.cur[pi],
			Start: a.start[pi], End: end, StartTime: a.startT[pi],
		})
		a.statSpans[pi]++
		a.statTotal[pi] += n
		if n > a.statLongest[pi] {
			a.statLongest[pi] = n
		}
	}
}

// drainClosed returns the spans closed since the last drain. With trim
// set (bounded streams) the drained spans leave memory — the running
// stats already carry their contribution, so finalize's aggregates are
// unaffected; only the retained Spans list shortens.
func (a *attentionAnalyzer) drainClosed(trim bool) []AttentionSpan {
	fresh := a.spans[a.emitted:]
	if trim {
		fresh = append([]AttentionSpan(nil), fresh...)
		a.spans = a.spans[:0]
		a.emitted = 0
	} else {
		a.emitted = len(a.spans)
	}
	return fresh
}

// finalize closes open runs and reports the per-person stats from the
// running counters (identical to a rescan of every span ever closed).
func (a *attentionAnalyzer) finalize() *AttentionResult {
	for pi := range a.ids {
		a.close(pi, a.last+1)
		a.cur[pi] = -1
	}
	res := &AttentionResult{Spans: a.spans}
	for pi, id := range a.ids {
		st := AttentionStat{
			Person: id, Spans: a.statSpans[pi], LongestFrames: a.statLongest[pi],
		}
		if st.Spans > 0 {
			st.MeanFrames = float64(a.statTotal[pi]) / float64(st.Spans)
		}
		res.Stats = append(res.Stats, st)
	}
	return res
}

// attentionSpanRecord is the span's record schema, shared by the live
// (RunEmit) and end-of-run emission paths so each span is written with
// identical bytes wherever it surfaces.
func attentionSpanRecord(s AttentionSpan) metadata.Record {
	return metadata.Record{
		Kind: metadata.KindEvent, Frame: s.Start, FrameEnd: s.End,
		Time: s.StartTime, Person: s.Person, Other: s.Target,
		Label: "attention-span", Value: float64(s.Frames()),
	}
}

// attentionEmitEvery is the rolling emission cadence in frames.
const attentionEmitEvery = 32

// attentionStage wires the analyzer into the graph as a frame stage
// with an end-of-run record emission. On live/bounded streams the stage
// is a rolling windowed operator: every attentionEmitEvery frames it
// drains the spans closed since the last tick (queueing them as records
// when Live, freeing them when Bounded); each span is emitted exactly
// once across the rolling and final passes.
func attentionStage(b *stageBuild) (*Stage, error) {
	an := newAttentionAnalyzer(b.ids)
	numFrames := b.numFrames
	return &Stage{
		Name:    StageAttention,
		Version: 1,
		Phase:   PhaseFrame,
		Needs:   []ArtifactKey{ArtLookAt},
		Config:  itoa(minAttentionFrames),
		Emit:    attentionEmitEvery,
		RunFrame: func(_ *runEnv, fa *FrameArtifacts) error {
			an.push(fa)
			return nil
		},
		RunEmit: func(env *runEnv, _ *FrameArtifacts) error {
			fresh := an.drainClosed(env.bounded)
			if env.live {
				for _, s := range fresh {
					env.QueueDerived(attentionSpanRecord(s))
				}
			}
			return nil
		},
		RunFinal: func(env *runEnv) error {
			// finalize closes the still-open runs into an.spans; the
			// prefix already emitted live is skipped, so each span is
			// written exactly once across the rolling and final passes.
			att := an.finalize()
			env.res.Attention = att
			recs := make([]metadata.Record, 0, len(att.Spans)+len(att.Stats))
			for _, s := range an.spans[an.emitted:] {
				recs = append(recs, attentionSpanRecord(s))
			}
			for _, st := range att.Stats {
				if st.Spans == 0 {
					continue
				}
				recs = append(recs, metadata.Record{
					Kind: metadata.KindEvent, Frame: 0, FrameEnd: numFrames,
					Person: st.Person, Other: -1,
					Label: "attention-mean", Value: st.MeanFrames,
				})
			}
			if len(recs) == 0 {
				return nil
			}
			return env.repo.AppendBatch(recs)
		},
	}, nil
}
