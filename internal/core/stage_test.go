package core

import (
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/gaze"
	"repro/internal/metadata"
	"repro/internal/scene"
)

// --- graph validation ---

func TestConfigRejectsUnknownStage(t *testing.T) {
	_, err := New(Config{
		Scenario: scene.PrototypeScenario(),
		Stages:   []string{"no-such-analyzer"},
	})
	if !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown stage: err = %v, want ErrBadConfig", err)
	}
}

func TestConfigRejectsDuplicateStage(t *testing.T) {
	// Both a frame-chain stage and an end-of-run stage: the whole base
	// set must be assembled before extras are validated, so the error
	// lands at New rather than mid-run.
	for _, dup := range []string{StageMultilayer, StageSummarize} {
		_, err := New(Config{
			Scenario: scene.PrototypeScenario(),
			Stages:   []string{dup},
		})
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("duplicate stage %s: err = %v, want ErrBadConfig", dup, err)
		}
	}
}

func TestGraphRejectsMissingProvider(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("needs-ghost", func(*stageBuild) (*Stage, error) {
		return &Stage{
			Name: "needs-ghost", Version: 1, Phase: PhaseFrame,
			Needs:    []ArtifactKey{"ghost"},
			RunFrame: func(*runEnv, *FrameArtifacts) error { return nil },
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Scenario:  scene.PrototypeScenario(),
		Registry:  reg,
		Stages:    []string{"needs-ghost"},
		MaxFrames: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("missing provider: err = %v, want ErrBadConfig", err)
	}
}

func TestGraphRejectsDependencyCycle(t *testing.T) {
	reg := NewRegistry()
	mk := func(name string, needs, provides ArtifactKey) {
		if err := reg.Register(name, func(*stageBuild) (*Stage, error) {
			return &Stage{
				Name: name, Version: 1, Phase: PhasePrepare,
				Needs: []ArtifactKey{needs}, Provides: []ArtifactKey{provides},
				RunCam: func(*runEnv, *Artifacts, any) error { return nil },
			}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("cyc-a", "key-b", "key-a")
	mk("cyc-b", "key-a", "key-b")
	p, err := New(Config{
		Scenario:  scene.PrototypeScenario(),
		Registry:  reg,
		Stages:    []string{"cyc-a", "cyc-b"},
		MaxFrames: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("cycle: err = %v, want ErrBadConfig", err)
	}
}

func TestGraphOrdersProviderBeforeConsumer(t *testing.T) {
	reg := NewRegistry()
	var order []string
	var mu sync.Mutex
	record := func(name string) {
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}
	// Requested consumer-first: the topological sort must still run the
	// provider first.
	if err := reg.Register("t-consumer", func(*stageBuild) (*Stage, error) {
		return &Stage{
			Name: "t-consumer", Version: 1, Phase: PhasePrepare,
			Needs:  []ArtifactKey{"t-key"},
			RunCam: func(_ *runEnv, _ *Artifacts, _ any) error { record("t-consumer"); return nil },
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("t-provider", func(*stageBuild) (*Stage, error) {
		return &Stage{
			Name: "t-provider", Version: 1, Phase: PhasePrepare,
			Provides: []ArtifactKey{"t-key"},
			RunCam:   func(_ *runEnv, _ *Artifacts, _ any) error { record("t-provider"); return nil },
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Scenario:  scene.PrototypeScenario(),
		Registry:  reg,
		Stages:    []string{"t-consumer", "t-provider"},
		MaxFrames: 1,
		Workers:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	res.Repo.Close()
	if len(order) != 2 || order[0] != "t-provider" || order[1] != "t-consumer" {
		t.Errorf("execution order = %v, want provider before consumer", order)
	}
}

// TestGraphRejectsExpiredArtifacts: gray planes are pooled (released
// after the ordered phase) and Track pointers are live tracker state —
// declaring a Need on them from a later phase must fail graph
// validation instead of reading nil or racing the lane consumer.
func TestGraphRejectsExpiredArtifacts(t *testing.T) {
	cases := []struct {
		name  string
		phase StagePhase
		key   ArtifactKey
	}{
		{"gray-at-merge", PhaseMerge, ArtGray},
		{"tracks-at-merge", PhaseMerge, ArtTracks},
		{"tracks-at-frame", PhaseFrame, ArtTracks},
	}
	for _, c := range cases {
		reg := NewRegistry()
		c := c
		if err := reg.Register(c.name, func(*stageBuild) (*Stage, error) {
			return &Stage{
				Name: c.name, Version: 1, Phase: c.phase,
				Needs:    []ArtifactKey{c.key},
				RunFrame: func(*runEnv, *FrameArtifacts) error { return nil },
			}, nil
		}); err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{
			Scenario:   scene.PrototypeScenario(),
			Mode:       PixelVision,
			Classifier: engineTestClassifier(t),
			MaxFrames:  3,
			Registry:   reg,
			Stages:     []string{c.name},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", c.name, err)
		}
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	reg := NewRegistry()
	err := reg.Register(StageRender, func(*stageBuild) (*Stage, error) { return nil, nil })
	if !errors.Is(err, ErrBadConfig) {
		t.Errorf("duplicate registration: err = %v, want ErrBadConfig", err)
	}
}

// --- artifact sharing ---

// TestIntegralsBuiltOncePerCameraFrame is the artifact-store contract:
// when the detect stage plus two extra registered analyzers all
// consume the summed-area tables, BuildIntegrals still runs exactly
// once per (camera, frame) — on the worker pool too.
func TestIntegralsBuiltOncePerCameraFrame(t *testing.T) {
	if testing.Short() {
		t.Skip("pixel vision is expensive")
	}
	reg := NewRegistry()
	for _, name := range []string{"emotion-integrals", "gaze-integrals"} {
		name := name
		if err := reg.Register(name, func(*stageBuild) (*Stage, error) {
			return &Stage{
				Name: name, Version: 1, Phase: PhasePrepare,
				Needs:    []ArtifactKey{ArtGray, ArtIntegrals},
				Provides: []ArtifactKey{ArtifactKey(name)},
				RunCam: func(_ *runEnv, a *Artifacts, _ any) error {
					in, sq := a.Integrals()
					if in == nil || sq == nil {
						t.Error("nil integral tables")
					}
					return nil
				},
			}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	builds := map[[2]int]int{}
	integralsHook = func(cam, frame int) {
		mu.Lock()
		builds[[2]int{cam, frame}]++
		mu.Unlock()
	}
	defer func() { integralsHook = nil }()

	const frames, cams = 9, 2
	p, err := New(Config{
		Scenario:     scene.PrototypeScenario(),
		Mode:         PixelVision,
		Gaze:         gaze.EstimatorOptions{Seed: 4},
		Classifier:   engineTestClassifier(t),
		MaxFrames:    frames,
		DetectEvery:  1, // every frame on cadence: all three stages consume
		PixelCameras: cams,
		Workers:      4,
		Registry:     reg,
		Stages:       []string{"emotion-integrals", "gaze-integrals"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	res.Repo.Close()

	if len(builds) != frames*cams {
		t.Errorf("built tables for %d (camera, frame) pairs, want %d", len(builds), frames*cams)
	}
	for key, n := range builds {
		if n != 1 {
			t.Errorf("camera %d frame %d built %d times, want exactly 1", key[0], key[1], n)
		}
	}
}

// --- attention-span analyzer ---

func TestAttentionAnalyzerSpans(t *testing.T) {
	ids := []int{0, 1, 2}
	an := newAttentionAnalyzer(ids)
	// P0 fixates P2 for 20 frames, then P1 for 5 (dropped: too short),
	// then nothing. P1 fixates P0 throughout (closed by finalize).
	for f := 0; f < 40; f++ {
		m := gaze.NewMatrix(ids)
		switch {
		case f < 20:
			m.M[0][2] = 1
		case f < 25:
			m.M[0][1] = 1
		}
		m.M[1][0] = 1
		an.push(&FrameArtifacts{Index: f, FS: scene.FrameState{Index: f}, LookAt: m})
	}
	res := an.finalize()
	want := []AttentionSpan{
		{Person: 0, Target: 2, Start: 0, End: 20},
		{Person: 1, Target: 0, Start: 0, End: 40},
	}
	if !reflect.DeepEqual(res.Spans, want) {
		t.Errorf("spans = %+v, want %+v", res.Spans, want)
	}
	if res.Stats[0].Spans != 1 || res.Stats[0].LongestFrames != 20 {
		t.Errorf("P0 stats = %+v", res.Stats[0])
	}
	if res.Stats[1].MeanFrames != 40 {
		t.Errorf("P1 mean = %v, want 40", res.Stats[1].MeanFrames)
	}
	if res.Stats[2].Spans != 0 {
		t.Errorf("P2 should have no spans: %+v", res.Stats[2])
	}
}

// TestAttentionStagePluggedIn proves the plug-in path end to end: the
// analyzer contributes a typed result and a derived record layer, and
// the rest of the record log is unchanged.
func TestAttentionStagePluggedIn(t *testing.T) {
	base := Config{
		Scenario:  scene.PrototypeScenario(),
		Mode:      GeometricVision,
		Gaze:      gaze.EstimatorOptions{Seed: 13},
		MaxFrames: 200,
	}
	plain := mustRun(t, base)
	defer plain.Repo.Close()
	if plain.Attention != nil {
		t.Error("attention layer produced without the stage enabled")
	}

	withAttn := base
	withAttn.Stages = []string{StageAttention}
	res := mustRun(t, withAttn)
	defer res.Repo.Close()

	if res.Attention == nil || len(res.Attention.Spans) == 0 {
		t.Fatalf("attention layer missing or empty: %+v", res.Attention)
	}
	spans, err := res.Repo.Query("label = 'attention-span'")
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != len(res.Attention.Spans) {
		t.Errorf("%d attention-span records, want %d", len(spans), len(res.Attention.Spans))
	}
	means, err := res.Repo.Query("label = 'attention-mean'")
	if err != nil {
		t.Fatal(err)
	}
	if len(means) == 0 {
		t.Error("no attention-mean records")
	}
	// The prototype scripts long fixations; spans must stay in range
	// and reference scripted participants.
	for _, s := range res.Attention.Spans {
		if s.Start < 0 || s.End > 200 || s.Frames() < minAttentionFrames {
			t.Errorf("span out of range: %+v", s)
		}
	}

	// Everything that is not the attention layer is byte-identical to
	// the plain run, modulo record IDs (the extra records shift later
	// IDs).
	strip := func(res *Result) []metadata.Record {
		var out []metadata.Record
		res.Repo.Scan(func(r metadata.Record) bool {
			if r.Label != "attention-span" && r.Label != "attention-mean" {
				r.ID = 0
				out = append(out, r)
			}
			return true
		})
		return out
	}
	if !reflect.DeepEqual(strip(plain), strip(res)) {
		t.Error("enabling the attention stage changed unrelated records")
	}
}

// --- engine error path ---

// failVision is a minimal streamed vision for engine failure tests.
type failVision struct {
	lanes int
	slow  time.Duration
}

func (v *failVision) streams() int    { return v.lanes }
func (v *failVision) newScratch() any { return nil }
func (v *failVision) prepare(_ int, fs scene.FrameState, _ any) any {
	if v.slow > 0 {
		time.Sleep(v.slow)
	}
	return fs.Index
}
func (v *failVision) step(_ int, _ scene.FrameState, prep any) (any, error) { return prep, nil }
func (v *failVision) finish(_ scene.FrameState, perStream []any) (any, error) {
	return perStream[0], nil
}
func (v *failVision) extract(fs scene.FrameState) (any, error) { return fs.Index, nil }

// TestRunStreamedSinkFailureStopsWorkers is the engine's error-path
// contract: a sink that fails mid-stream must stop the feeder, the
// workers and the per-stream consumers promptly — no goroutine leak,
// no deadlock — and surface the sink's error. Run under -race by
// check.sh.
func TestRunStreamedSinkFailureStopsWorkers(t *testing.T) {
	sim, err := scene.NewSimulator(scene.PrototypeScenario())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("sink exploded")
	for _, lanes := range []int{1, 3} {
		before := runtime.NumGoroutine()
		sink := func(i int, _ scene.FrameState, _ any) error {
			if i == 50 {
				return boom
			}
			return nil
		}
		err := runStreamed(nil, sim.FrameState, 400, 8, &failVision{lanes: lanes, slow: 20 * time.Microsecond},
			newStageTimer(), sink)
		if !errors.Is(err, boom) {
			t.Fatalf("lanes=%d: err = %v, want the sink error", lanes, err)
		}
		// All engine goroutines must drain; poll briefly — workers may
		// still be observing the done channel when runStreamed returns.
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if g := runtime.NumGoroutine(); g > before {
			t.Errorf("lanes=%d: %d goroutines before, %d after — engine leaked", lanes, before, g)
		}
	}
}

// TestRunStreamedStepFailurePropagates covers the other error path:
// a stage failure inside the ordered phase cancels the run the same
// way.
func TestRunStreamedStepFailurePropagates(t *testing.T) {
	cfg := Config{
		Scenario:  scene.PrototypeScenario(),
		Mode:      GeometricVision,
		Gaze:      gaze.EstimatorOptions{Seed: 1},
		MaxFrames: 100,
		Workers:   4,
	}
	reg := NewRegistry()
	boom := errors.New("stage exploded")
	if err := reg.Register("exploding", func(*stageBuild) (*Stage, error) {
		return &Stage{
			Name: "exploding", Version: 1, Phase: PhasePrepare,
			RunCam: func(_ *runEnv, a *Artifacts, _ any) error {
				if a.FS.Index == 60 {
					return boom
				}
				return nil
			},
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	cfg.Stages = []string{"exploding"}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); !errors.Is(err, boom) {
		t.Errorf("err = %v, want the stage error", err)
	}
}
