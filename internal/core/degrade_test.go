package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/gaze"
	"repro/internal/scene"
)

func degradeConfig() Config {
	return Config{
		Scenario:  scene.PrototypeScenario(),
		Mode:      GeometricVision,
		Gaze:      gaze.EstimatorOptions{Seed: 21},
		MaxFrames: 120,
		Workers:   1,
	}
}

// registerPanicStage registers a PhaseFrame plug-in that panics once,
// at the given frame, and counts its invocations.
func registerPanicStage(t *testing.T, reg *Registry, name string, panicAt int, calls *int) {
	t.Helper()
	if err := reg.Register(name, func(*stageBuild) (*Stage, error) {
		return &Stage{
			Name: name, Version: 1, Phase: PhaseFrame,
			RunFrame: func(_ *runEnv, fa *FrameArtifacts) error {
				*calls++
				if fa.Index == panicAt {
					panic(fmt.Sprintf("%s exploded at frame %d", name, panicAt))
				}
				return nil
			},
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDegradedRunSurvivesPanickingStage: a plug-in stage panic under
// Config.Degraded quarantines the stage, the run completes, the rest
// of the pipeline is byte-identical to a run without the plug-in, and
// Result.Quarantined names the loss.
func TestDegradedRunSurvivesPanickingStage(t *testing.T) {
	baseline := mustRun(t, degradeConfig())
	defer baseline.Repo.Close()

	reg := NewRegistry()
	var calls int
	registerPanicStage(t, reg, "boom", 3, &calls)
	cfg := degradeConfig()
	cfg.Registry = reg
	cfg.Stages = []string{"boom"}
	cfg.Degraded = true
	res := mustRun(t, cfg)
	defer res.Repo.Close()

	if calls != 4 {
		t.Errorf("panicking stage ran %d times, want 4 (frames 0-3, then quarantined)", calls)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("Quarantined = %+v, want exactly the panicking stage", res.Quarantined)
	}
	q := res.Quarantined[0]
	if q.Stage != "boom" || q.Reason == "" || len(q.Downstream) != 0 {
		t.Errorf("quarantine report = %+v, want stage boom with a reason and no downstream", q)
	}
	// The surviving pipeline is unharmed: identical layers, summary and
	// record log.
	assertRunsEqual(t, captureResult(t, baseline), captureResult(t, res), "degraded")
}

// TestStrictRunPanicPropagates: without Config.Degraded a stage panic
// must fail fast, exactly as before stage isolation existed.
func TestStrictRunPanicPropagates(t *testing.T) {
	reg := NewRegistry()
	var calls int
	registerPanicStage(t, reg, "boom", 3, &calls)
	cfg := degradeConfig()
	cfg.Registry = reg
	cfg.Stages = []string{"boom"}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("strict run absorbed a stage panic, want propagation")
		}
	}()
	p.Run()
}

// TestQuarantineDisablesArtifactDownstream: when a provider panics,
// every stage transitively consuming its artifacts is disabled with
// it — never invoked again — and listed as downstream in the report.
func TestQuarantineDisablesArtifactDownstream(t *testing.T) {
	reg := NewRegistry()
	var midCalls, leafCalls int
	if err := reg.Register("mid", func(*stageBuild) (*Stage, error) {
		return &Stage{
			Name: "mid", Version: 1, Phase: PhaseFrame,
			Provides: []ArtifactKey{"mid-art"},
			RunFrame: func(*runEnv, *FrameArtifacts) error {
				midCalls++
				if midCalls == 5 {
					panic("mid gave up")
				}
				return nil
			},
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("leaf", func(*stageBuild) (*Stage, error) {
		return &Stage{
			Name: "leaf", Version: 1, Phase: PhaseFrame,
			Needs: []ArtifactKey{"mid-art"},
			RunFrame: func(*runEnv, *FrameArtifacts) error {
				leafCalls++
				return nil
			},
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
	cfg := degradeConfig()
	cfg.Registry = reg
	cfg.Stages = []string{"mid", "leaf"}
	cfg.Degraded = true
	res := mustRun(t, cfg)
	defer res.Repo.Close()

	if midCalls != 5 {
		t.Errorf("mid ran %d times, want 5", midCalls)
	}
	// leaf ran only for the frames before the panic (the stages run in
	// provider order within the frame, so it saw frames 0-3).
	if leafCalls != 4 {
		t.Errorf("leaf ran %d times after its provider died, want 4", leafCalls)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("Quarantined = %+v, want one report", res.Quarantined)
	}
	q := res.Quarantined[0]
	if q.Stage != "mid" || len(q.Downstream) != 1 || q.Downstream[0] != "leaf" {
		t.Errorf("report = %+v, want mid with downstream [leaf]", q)
	}
}

// TestInvokeAbsorbsOnlyTrueCollateral: the error-absorption path in
// invoke covers exactly the quarantine race — a stage already inside
// its callback when its upstream dies fails on the missing artifact
// and is absorbed; a stage with no dependency on anything tainted is
// an independent fault and still aborts the degraded run.
func TestInvokeAbsorbsOnlyTrueCollateral(t *testing.T) {
	a := &Stage{Name: "a", Provides: []ArtifactKey{"x"}}
	b := &Stage{Name: "b", Needs: []ArtifactKey{"x"}}
	c := &Stage{Name: "c"}
	g := &stageGraph{stages: []*Stage{a, b, c}}
	env := &runEnv{graph: g, quar: newStageQuarantine(g)}

	// The race window: b is already inside its callback when a's panic
	// quarantines the graph, then fails on the now-missing artifact.
	err := env.invoke(b, func() error {
		env.quar.quarantine(a, "panic: a died")
		return errors.New("x is nil")
	})
	if err != nil {
		t.Fatalf("collateral error propagated: %v", err)
	}

	boom := errors.New("disk on fire")
	if err := env.invoke(c, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("independent error = %v, want %v to abort the run", err, boom)
	}
	failures := env.quar.failures()
	if len(failures) != 1 || failures[0].Stage != "a" ||
		len(failures[0].Downstream) != 1 || failures[0].Downstream[0] != "b" {
		t.Fatalf("failures = %+v, want a with downstream [b]", failures)
	}
}

// TestDegradedIndependentErrorStillAborts: quarantine makes the run
// best-effort only about the quarantined chain. A later error from a
// stage with no artifact dependency on the loss — think the metadata
// persistence finalizer hitting an I/O error — must still fail the
// run instead of being silently filed as quarantine.
func TestDegradedIndependentErrorStillAborts(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("flaky", func(*stageBuild) (*Stage, error) {
		return &Stage{
			Name: "flaky", Version: 1, Phase: PhaseFrame,
			RunFrame: func(_ *runEnv, fa *FrameArtifacts) error {
				if fa.Index == 2 {
					panic("flaky died")
				}
				return nil
			},
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("cannot cope, independently of flaky")
	if err := reg.Register("grumpy", func(*stageBuild) (*Stage, error) {
		return &Stage{
			Name: "grumpy", Version: 1, Phase: PhaseFrame,
			RunFrame: func(_ *runEnv, fa *FrameArtifacts) error {
				if fa.Index == 10 {
					return boom
				}
				return nil
			},
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
	cfg := degradeConfig()
	cfg.Registry = reg
	cfg.Stages = []string{"flaky", "grumpy"}
	cfg.Degraded = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); !errors.Is(err, boom) {
		t.Fatalf("run err = %v, want the independent stage error to abort", err)
	}
}

// TestStrictErrorStillFailsFast: Degraded changes nothing about stage
// errors before any panic — they abort the run exactly as in strict
// mode, so degraded and strict runs agree on every healthy input.
func TestDegradedErrorBeforePanicFailsFast(t *testing.T) {
	reg := NewRegistry()
	boom := errors.New("deterministic failure")
	if err := reg.Register("errs", func(*stageBuild) (*Stage, error) {
		return &Stage{
			Name: "errs", Version: 1, Phase: PhaseFrame,
			RunFrame: func(_ *runEnv, fa *FrameArtifacts) error {
				if fa.Index == 7 {
					return boom
				}
				return nil
			},
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
	cfg := degradeConfig()
	cfg.Registry = reg
	cfg.Stages = []string{"errs"}
	cfg.Degraded = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); !errors.Is(err, boom) {
		t.Fatalf("run err = %v, want the stage error to abort (no prior degradation)", err)
	}
}

// TestQuarantineUnderParallelExtraction: a prepare-phase plug-in
// panicking on the worker pool quarantines cleanly while workers race
// (run under -race in CI), the run completes, and exactly one report
// is emitted no matter how many workers hit the dead stage.
func TestQuarantineUnderParallelExtraction(t *testing.T) {
	baseline := mustRun(t, degradeConfig())
	defer baseline.Repo.Close()

	reg := NewRegistry()
	if err := reg.Register("prep-boom", func(*stageBuild) (*Stage, error) {
		return &Stage{
			Name: "prep-boom", Version: 1, Phase: PhasePrepare,
			Provides: []ArtifactKey{"prep-boom-art"},
			RunCam: func(_ *runEnv, a *Artifacts, _ any) error {
				if a.FS.Index >= 5 {
					panic("prep-boom exploded")
				}
				return nil
			},
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
	cfg := degradeConfig()
	cfg.Registry = reg
	cfg.Stages = []string{"prep-boom"}
	cfg.Degraded = true
	cfg.Workers = 8
	res := mustRun(t, cfg)
	defer res.Repo.Close()

	if len(res.Quarantined) != 1 || res.Quarantined[0].Stage != "prep-boom" {
		t.Fatalf("Quarantined = %+v, want exactly one prep-boom report", res.Quarantined)
	}
	// Output equals a clean parallel run without the plug-in.
	assertRunsEqual(t, captureResult(t, baseline), captureResult(t, res), "parallel-degraded")
}
