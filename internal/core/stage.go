package core

// Stage graph (DESIGN.md §7): the pipeline's extraction and analysis
// work is expressed as named stages over a typed per-(camera, frame)
// artifact store, resolved from a registry, dependency-ordered, and
// scheduled onto the concurrent engine. Adding an analyzer means
// registering a Stage and naming it in Config.Stages — the engine,
// the metadata layout and the other stages are untouched.

import (
	"fmt"
	"hash/fnv"

	"repro/internal/camera"
	"repro/internal/scene"
)

// ArtifactKey names one entry of the per-(camera, frame) artifact
// store. Stages declare the keys they consume (Needs) and produce
// (Provides); the graph builder orders stages so every key is produced
// before it is consumed, and rejects graphs where it cannot.
type ArtifactKey string

// Built-in artifact keys.
const (
	// ArtGray is the rendered grayscale plane of one camera's view.
	ArtGray ArtifactKey = "gray"
	// ArtIntegrals is the plain + squared summed-area table pair of the
	// gray plane. It is materialised lazily — the first consumer's
	// Artifacts.Integrals call builds both tables into worker-owned
	// buffers, every later consumer reuses them — and is only valid
	// during PhasePrepare (the buffers belong to the worker).
	ArtIntegrals ArtifactKey = "integrals"
	// ArtDetections is the frame's face-detection output (cadence
	// frames only; empty otherwise).
	ArtDetections ArtifactKey = "detections"
	// ArtTracks marks that the camera's tracker has been advanced for
	// this frame.
	ArtTracks ArtifactKey = "tracks"
	// ArtCamEmotions is one camera's fused person → emotion map.
	ArtCamEmotions ArtifactKey = "cam-emotions"
	// ArtCamGaze is one camera lane's gaze-observation set (geometric
	// vision produces all observations in its single lane).
	ArtCamGaze ArtifactKey = "cam-gaze"
	// ArtEmotions is the frame-level cross-camera fused emotion map.
	ArtEmotions ArtifactKey = "emotions"
	// ArtGazeObs is the frame-level gaze-observation set.
	ArtGazeObs ArtifactKey = "gaze-obs"
	// ArtLookAt is the frame's look-at matrix (paper Fig. 4).
	ArtLookAt ArtifactKey = "lookat"
)

// StagePhase is where in the engine a stage executes.
type StagePhase uint8

// Stage phases, in execution order.
const (
	// PhasePrepare stages run the stateless per-(camera, frame) work on
	// any worker in any order (render, detect).
	PhasePrepare StagePhase = iota
	// PhaseOrdered stages advance per-camera state and see each
	// camera's frames in strict order (track, classify).
	PhaseOrdered
	// PhaseMerge stages fuse the per-camera artifacts of one frame, in
	// frame order, on the merger goroutine.
	PhaseMerge
	// PhaseFrame stages consume one merged frame at a time, in frame
	// order, on the serial analysis goroutine (gaze analysis,
	// multilayer, raw-record emission).
	PhaseFrame
	// PhaseFinal stages run once after the frame loop (video parsing,
	// derived records, summarize).
	PhaseFinal

	numPhases
)

// String names the phase.
func (p StagePhase) String() string {
	switch p {
	case PhasePrepare:
		return "prepare"
	case PhaseOrdered:
		return "ordered"
	case PhaseMerge:
		return "merge"
	case PhaseFrame:
		return "frame"
	case PhaseFinal:
		return "final"
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Stage is one unit of pipeline work. Exactly one Run callback must be
// set, matching the phase: RunCam for PhasePrepare/PhaseOrdered,
// RunFrame for PhaseMerge/PhaseFrame, RunFinal for PhaseFinal.
// PhaseFrame stages may additionally set RunFinal for end-of-run
// flushing (the multilayer finalize, analyzer summaries).
type Stage struct {
	// Name identifies the stage in the registry, the run manifest, the
	// timing table and Config.Stages.
	Name string
	// Version is bumped when the stage's algorithm changes; the run
	// manifest records it so incremental runs re-derive stale output.
	Version int
	// Phase is where the engine schedules the stage.
	Phase StagePhase
	// Needs lists artifact keys the stage consumes; every key must be
	// Provided by an earlier stage of the resolved graph.
	Needs []ArtifactKey
	// Provides lists artifact keys the stage produces.
	Provides []ArtifactKey
	// Config is the canonical rendering of the configuration the stage
	// read when it was built; its hash is persisted in the run manifest
	// and compared on incremental runs.
	Config string
	// Replayable marks extraction stages whose output is a pure
	// function of the frame state (no rendered pixels, no per-camera
	// state), so an incremental run can recompute them when stale
	// without re-decoding video. Stages of PhaseFrame/PhaseFinal need
	// no flag: they always re-derive.
	Replayable bool
	// NewScratch allocates one worker's reusable scratch for this stage
	// (PhasePrepare only; nil when the stage keeps no scratch).
	NewScratch func() any
	// RunCam executes the stage for one (camera, frame).
	RunCam func(env *runEnv, a *Artifacts, scratch any) error
	// RunFrame executes the stage for one merged frame.
	RunFrame func(env *runEnv, fa *FrameArtifacts) error
	// RunFinal executes once after the frame loop.
	RunFinal func(env *runEnv) error

	// Window declares how many merged frames of history the stage reads
	// through Env.Window (0 = only the current frame). The engine
	// retains a ring of the last max(Window) FrameArtifacts and evicts a
	// frame as soon as no stage's window can still reference it, so
	// unbounded streams run in bounded memory (PhaseFrame only).
	Window int
	// Emit is the stage's incremental emission cadence in frames: during
	// streaming runs (RunStream with Live or Bounded set) the engine
	// invokes RunEmit after every Emit-th merged frame. 0 = never.
	Emit int
	// RunEmit is the stage's incremental windowed operator: it emits or
	// drains derived output mid-stream (live records, span draining,
	// series trimming) every Emit frames. It is never invoked by the
	// end-of-run Run path nor by a plain finite RunStream, so stage
	// output on finite streams stays byte-identical to the end-of-run
	// oracle (PhaseFrame only; requires Emit > 0).
	RunEmit func(env *runEnv, fa *FrameArtifacts) error
}

// StageFactory builds a fresh Stage instance for one run. Factories own
// all per-run state (renderers, trackers, analyzers) via the returned
// stage's closures, so a Pipeline stays reusable.
type StageFactory func(b *stageBuild) (*Stage, error)

// stageBuild is everything a factory may consult while building.
// Custom factories reach it through the exported StageBuild alias and
// its accessors.
type stageBuild struct {
	cfg       Config
	sim       *scene.Simulator
	rig       *camera.Rig
	ids       []int
	nCams     int
	numFrames int
}

// StageBuild is the build context handed to stage factories.
type StageBuild = stageBuild

// Config is the run's full configuration.
func (b *stageBuild) Config() Config { return b.cfg }

// Rig is the run's camera platform.
func (b *stageBuild) Rig() *camera.Rig { return b.rig }

// Simulator evaluates the run's scenario frame by frame.
func (b *stageBuild) Simulator() *scene.Simulator { return b.sim }

// IDs lists the participant IDs in declaration order.
func (b *stageBuild) IDs() []int { return append([]int(nil), b.ids...) }

// Cameras is the number of extraction lanes (pixel cameras, or 1).
func (b *stageBuild) Cameras() int { return b.nCams }

// NumFrames is the number of frames the run analyses.
func (b *stageBuild) NumFrames() int { return b.numFrames }

// Registry maps stage names to factories. The zero value is unusable;
// use NewRegistry (which seeds the built-in stages) and Register
// additions on top.
type Registry struct {
	order     []string
	factories map[string]StageFactory
}

// NewRegistry returns a registry seeded with every built-in stage.
func NewRegistry() *Registry {
	r := &Registry{factories: make(map[string]StageFactory)}
	registerBuiltins(r)
	return r
}

// Register adds a stage factory under a unique name.
func (r *Registry) Register(name string, f StageFactory) error {
	if name == "" || f == nil {
		return fmt.Errorf("core: registering stage %q: empty name or nil factory: %w", name, ErrBadConfig)
	}
	if _, dup := r.factories[name]; dup {
		return fmt.Errorf("core: stage %q already registered: %w", name, ErrBadConfig)
	}
	r.order = append(r.order, name)
	r.factories[name] = f
	return nil
}

// Names lists the registered stage names in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.order...)
}

// Has reports whether a stage name is registered.
func (r *Registry) Has(name string) bool {
	_, ok := r.factories[name]
	return ok
}

// stageGraph is a resolved, validated, dependency-ordered stage set.
type stageGraph struct {
	stages []*Stage
	// byPhase[p] lists the phase's stages in execution order.
	byPhase [numPhases][]*Stage
}

// buildGraph resolves names through the registry, builds the stages
// and orders each phase topologically by Needs/Provides (stable: ties
// keep request order, so runs are deterministic).
func buildGraph(reg *Registry, names []string, b *stageBuild) (*stageGraph, error) {
	g := &stageGraph{}
	seen := make(map[string]bool, len(names))
	providers := make(map[ArtifactKey]*Stage)
	for _, name := range names {
		if seen[name] {
			return nil, fmt.Errorf("core: stage %q requested twice: %w", name, ErrBadConfig)
		}
		seen[name] = true
		f, ok := reg.factories[name]
		if !ok {
			return nil, fmt.Errorf("core: unknown stage %q (registered: %v): %w", name, reg.Names(), ErrBadConfig)
		}
		st, err := f(b)
		if err != nil {
			return nil, fmt.Errorf("core: building stage %q: %w", name, err)
		}
		if st.Name != name {
			return nil, fmt.Errorf("core: stage %q built under name %q: %w", name, st.Name, ErrBadConfig)
		}
		if err := checkStageShape(st); err != nil {
			return nil, err
		}
		for _, k := range st.Provides {
			if prev, dup := providers[k]; dup {
				return nil, fmt.Errorf("core: artifact %q provided by both %q and %q: %w", k, prev.Name, st.Name, ErrBadConfig)
			}
			providers[k] = st
		}
		g.stages = append(g.stages, st)
	}
	// Dependency validation: a consumer's provider must exist and run
	// no later than the consumer's phase; the worker-scoped integral
	// tables are additionally prepare-only.
	for _, st := range g.stages {
		for _, k := range st.Needs {
			p, ok := providers[k]
			if !ok {
				return nil, fmt.Errorf("core: stage %q needs artifact %q but no requested stage provides it: %w", st.Name, k, ErrBadConfig)
			}
			if p.Phase > st.Phase {
				return nil, fmt.Errorf("core: stage %q (phase %v) needs %q from later-phase %q (%v): %w",
					st.Name, st.Phase, k, p.Name, p.Phase, ErrBadConfig)
			}
			// Lifetime guards: some artifacts do not survive their
			// producing phases. The integral tables live in worker
			// scratch (overwritten by the worker's next frame), the
			// gray plane returns to its pool after the ordered phase,
			// and Track pointers are live tracker state the lane
			// consumer keeps mutating on later frames — reading them
			// from the merger on would race.
			switch {
			case k == ArtIntegrals && st.Phase != PhasePrepare:
				return nil, fmt.Errorf("core: stage %q consumes %q outside the prepare phase (tables are worker-scoped): %w", st.Name, k, ErrBadConfig)
			case k == ArtGray && st.Phase > PhaseOrdered:
				return nil, fmt.Errorf("core: stage %q consumes %q after the ordered phase (the plane is released to its pool): %w", st.Name, k, ErrBadConfig)
			case k == ArtTracks && st.Phase != PhaseOrdered:
				return nil, fmt.Errorf("core: stage %q consumes %q outside the ordered phase (tracks are live per-lane state): %w", st.Name, k, ErrBadConfig)
			}
		}
	}
	for p := StagePhase(0); p < numPhases; p++ {
		phase := make([]*Stage, 0)
		for _, st := range g.stages {
			if st.Phase == p {
				phase = append(phase, st)
			}
		}
		sorted, err := topoSort(phase, providers)
		if err != nil {
			return nil, err
		}
		g.byPhase[p] = sorted
	}
	return g, nil
}

// checkStageShape validates the phase ↔ callback pairing.
func checkStageShape(st *Stage) error {
	bad := func(why string) error {
		return fmt.Errorf("core: stage %q (%v): %s: %w", st.Name, st.Phase, why, ErrBadConfig)
	}
	switch st.Phase {
	case PhasePrepare, PhaseOrdered:
		if st.RunCam == nil || st.RunFrame != nil || st.RunFinal != nil {
			return bad("per-camera phases take exactly RunCam")
		}
	case PhaseMerge:
		if st.RunFrame == nil || st.RunCam != nil || st.RunFinal != nil {
			return bad("merge stages take exactly RunFrame")
		}
	case PhaseFrame:
		if st.RunFrame == nil || st.RunCam != nil {
			return bad("frame stages take RunFrame (plus optional RunFinal)")
		}
	case PhaseFinal:
		if st.RunFinal == nil || st.RunCam != nil || st.RunFrame != nil {
			return bad("final stages take exactly RunFinal")
		}
	default:
		return bad("unknown phase")
	}
	if st.NewScratch != nil && st.Phase != PhasePrepare {
		return bad("worker scratch is prepare-only")
	}
	if st.Window < 0 || st.Emit < 0 {
		return bad("negative Window or Emit")
	}
	if (st.Window > 0 || st.Emit > 0 || st.RunEmit != nil) && st.Phase != PhaseFrame {
		return bad("windowed operators (Window/Emit/RunEmit) are frame-phase only")
	}
	if st.RunEmit != nil && st.Emit <= 0 {
		return bad("RunEmit requires an Emit cadence")
	}
	if st.Emit > 0 && st.RunEmit == nil {
		return bad("Emit cadence without RunEmit")
	}
	return nil
}

// topoSort orders one phase's stages so providers precede consumers,
// keeping the incoming (request) order among independent stages. Only
// same-phase edges constrain the sort — cross-phase edges are already
// satisfied by phase ordering.
func topoSort(stages []*Stage, providers map[ArtifactKey]*Stage) ([]*Stage, error) {
	if len(stages) <= 1 {
		return stages, nil
	}
	idx := make(map[*Stage]int, len(stages))
	for i, st := range stages {
		idx[st] = i
	}
	indeg := make([]int, len(stages))
	succ := make([][]int, len(stages))
	for i, st := range stages {
		for _, k := range st.Needs {
			p := providers[k]
			if p == nil || p == st {
				continue
			}
			if j, same := idx[p]; same {
				succ[j] = append(succ[j], i)
				indeg[i]++
			}
		}
	}
	out := make([]*Stage, 0, len(stages))
	ready := make([]int, 0, len(stages))
	for i := range stages {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		// Lowest request index first keeps the order deterministic.
		best := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[best] {
				best = i
			}
		}
		n := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		out = append(out, stages[n])
		for _, s := range succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(out) != len(stages) {
		stuck := make([]string, 0)
		for i, d := range indeg {
			if d > 0 {
				stuck = append(stuck, stages[i].Name)
			}
		}
		return nil, fmt.Errorf("core: stage dependency cycle through %v: %w", stuck, ErrBadConfig)
	}
	return out, nil
}

// configHash fingerprints a stage's Config string for the run manifest.
func configHash(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}
