package core

// Per-frame artifact stores (DESIGN.md §7). Artifacts is the
// per-(camera, frame) scratch flowing prepare → ordered; FrameArtifacts
// is the merged per-frame view flowing merge → frame stages. Both are
// typed structs rather than maps: consumers read fields directly, and
// the Needs/Provides declarations on stages are what the graph builder
// checks — the store itself stays allocation-light on the hot path.

import (
	"repro/internal/face"
	"repro/internal/gaze"
	"repro/internal/img"
	"repro/internal/layers"
	"repro/internal/scene"
)

// integralsHook, when set, observes every summed-area-table build —
// tests use it to prove the tables are built exactly once per
// (camera, frame) however many stages consume them.
var integralsHook func(cam, frame int)

// Artifacts is the typed per-(camera, frame) artifact store.
type Artifacts struct {
	// Cam is the camera (stream) index.
	Cam int
	// FS is the frame's immutable simulator state.
	FS scene.FrameState

	// Gray is the rendered grayscale plane (ArtGray); pooled, released
	// by the engine after the ordered phase.
	Gray *img.Gray
	// Dets is the detection output (ArtDetections); empty off-cadence.
	Dets []face.Detection
	// Tracks is the camera's live track set after this frame's tracker
	// step (ArtTracks).
	Tracks []*face.Track
	// CamEmotions is the camera's person → emotion map (ArtCamEmotions).
	CamEmotions map[int]layers.EmotionObs
	// CamGaze is the lane's gaze observations (ArtCamGaze).
	CamGaze []gaze.Observation

	// release returns Gray to its renderer's pool.
	release func(*img.Gray)
	// scratch holds the owning worker's reusable integral tables.
	scratch *integralScratch
	// integralsBuilt guards the lazy one-build-per-frame contract.
	integralsBuilt bool
	// err is the first stage failure; later stages are skipped and the
	// engine surfaces it from the ordered phase.
	err error
}

// integralScratch is one worker's reusable summed-area-table pair.
type integralScratch struct {
	in *img.Integral
	sq *img.IntegralSq
}

// Integrals returns the frame's summed-area-table pair (ArtIntegrals),
// building it into the worker's reusable buffers on first call and
// sharing it with every later consumer of the same (camera, frame).
// Only valid inside PhasePrepare stages: the buffers belong to the
// worker and are overwritten by its next frame.
func (a *Artifacts) Integrals() (*img.Integral, *img.IntegralSq) {
	if !a.integralsBuilt {
		a.scratch.in, a.scratch.sq = img.BuildIntegrals(a.Gray, a.scratch.in, a.scratch.sq)
		a.integralsBuilt = true
		if integralsHook != nil {
			integralsHook(a.Cam, a.FS.Index)
		}
	}
	return a.scratch.in, a.scratch.sq
}

// FrameArtifacts is the merged per-frame artifact store.
type FrameArtifacts struct {
	// Index is the frame index.
	Index int
	// FS is the frame's immutable simulator state.
	FS scene.FrameState
	// PerCam are the camera stores in camera order (gray planes already
	// released).
	PerCam []*Artifacts
	// Emotions is the cross-camera fused person → emotion map
	// (ArtEmotions).
	Emotions map[int]layers.EmotionObs
	// Obs is the frame's gaze-observation set (ArtGazeObs).
	Obs []gaze.Observation
	// LookAt is the frame's look-at matrix (ArtLookAt).
	LookAt gaze.Matrix
}
