package core

// Online derived stages (DESIGN.md §10): windowed operators that turn
// the stage graph into a live analysis surface. StageDiningPhase decodes
// the scenario's dining phase over a sliding symbol window mid-stream
// and over the full sequence at end of run; StageLiveSummary publishes a
// rolling overall-happiness / dominance digest at its emit cadence.
// Both are opt-in via Config.Stages (like "attention-span") and emit
// their live records only on Live streams, so plain runs and finite
// non-live streams stay byte-identical to the end-of-run oracle.

import (
	"fmt"

	"repro/internal/emotion"
	"repro/internal/gaze"
	"repro/internal/hmm"
	"repro/internal/metadata"
	"repro/internal/scene"
)

// Online stage names.
const (
	StageDiningPhase = "dining-phase"
	StageLiveSummary = "live-summary"
)

// Dining-phase decoding window and cadence (frames).
const (
	diningWindow    = 64
	diningEmitEvery = 16
)

// Live-summary rolling window and cadence (frames).
const (
	liveSummaryWindow    = 50
	liveSummaryEmitEvery = 25
)

// phaseSpans collapses a decoded state sequence into contiguous spans,
// offsetting frame indexes by offset (non-zero when a bounded stream
// only retained the window tail).
func phaseSpans(states []int, offset int) []PhaseSpan {
	var spans []PhaseSpan
	for i := 0; i < len(states); {
		j := i
		for j < len(states) && states[j] == states[i] {
			j++
		}
		spans = append(spans, PhaseSpan{
			Phase: scene.Phase(states[i]).String(),
			Start: offset + i, End: offset + j,
		})
		i = j
	}
	return spans
}

// diningPhaseStage decodes dining phases with a supervised HMM (the
// Gao-protocol model of the hmm package, states = phases). Per frame it
// quantises the ground-truth state into a dining symbol; at emit ticks
// on live streams it Viterbi-decodes the trailing window and publishes
// the current phase estimate as a "live-phase" record; at end of run it
// decodes the whole sequence into Result.Phases plus "dining-phase"
// span records. On bounded streams only the window tail is retained, so
// the final decode covers just that tail (partial result, flat memory).
func diningPhaseStage(b *stageBuild) (*Stage, error) {
	seed := b.cfg.Gaze.Seed
	syms, phases := hmm.FeaturizeScenario(b.sim, 0, seed)
	model, err := hmm.FitSupervised([][]int{syms}, [][]scene.Phase{phases}, hmm.DiningSymbols)
	if err != nil {
		return nil, fmt.Errorf("core: fitting dining-phase model: %w", err)
	}
	var all []int
	win := make([]int, 0, diningWindow)
	return &Stage{
		Name:    StageDiningPhase,
		Version: 1,
		Phase:   PhaseFrame,
		Config:  fmt.Sprintf("window=%d emit=%d seed=%d", diningWindow, diningEmitEvery, seed),
		Window:  diningWindow,
		Emit:    diningEmitEvery,
		RunFrame: func(env *runEnv, fa *FrameArtifacts) error {
			s := hmm.DiningSymbol(fa.FS, 0, seed)
			if len(win) == diningWindow {
				copy(win, win[1:])
				win[len(win)-1] = s
			} else {
				win = append(win, s)
			}
			if !env.bounded {
				all = append(all, s)
			}
			return nil
		},
		RunEmit: func(env *runEnv, fa *FrameArtifacts) error {
			if !env.live || len(win) == 0 {
				return nil
			}
			states, err := model.Viterbi(win)
			if err != nil {
				return fmt.Errorf("decoding phase window: %w", err)
			}
			ph := scene.Phase(states[len(states)-1])
			env.QueueDerived(metadata.Record{
				Kind: metadata.KindEvent, Frame: fa.Index, FrameEnd: fa.Index + 1,
				Time: fa.FS.Time, Person: -1, Other: -1,
				Label: "live-phase", Value: float64(ph),
				Tags: map[string]string{"phase": ph.String()},
			})
			return nil
		},
		RunFinal: func(env *runEnv) error {
			seq, offset := all, 0
			if env.bounded {
				seq, offset = win, env.framesDone-len(win)
			}
			if len(seq) == 0 {
				return nil
			}
			states, err := model.Viterbi(seq)
			if err != nil {
				return fmt.Errorf("decoding dining phases: %w", err)
			}
			spans := phaseSpans(states, offset)
			env.res.Phases = spans
			recs := make([]metadata.Record, 0, len(spans))
			for _, sp := range spans {
				recs = append(recs, metadata.Record{
					Kind: metadata.KindEvent, Frame: sp.Start, FrameEnd: sp.End,
					Person: -1, Other: -1,
					Label: "dining-phase", Value: float64(sp.End - sp.Start),
					Tags: map[string]string{"phase": sp.Phase},
				})
			}
			return env.repo.AppendBatch(recs)
		},
	}, nil
}

// liveSummaryStage maintains the cumulative Fig. 9 look-at summary plus
// a rolling overall-happiness window, publishing a "live-summary"
// record at each emit tick on live streams: the rolling mean OH as the
// value, the currently dominant participant as the person. It derives
// nothing at end of run — the multilayer and summarize stages own the
// final digest — so plain runs are untouched by enabling it.
func liveSummaryStage(b *stageBuild) (*Stage, error) {
	sum := gaze.NewSummary(b.ids)
	ids := b.ids
	ohWin := make([]float64, 0, liveSummaryWindow)
	return &Stage{
		Name:    StageLiveSummary,
		Version: 1,
		Phase:   PhaseFrame,
		Needs:   []ArtifactKey{ArtLookAt, ArtEmotions},
		Config:  fmt.Sprintf("window=%d emit=%d", liveSummaryWindow, liveSummaryEmitEvery),
		Window:  liveSummaryWindow,
		Emit:    liveSummaryEmitEvery,
		RunFrame: func(_ *runEnv, fa *FrameArtifacts) error {
			if err := sum.Add(fa.LookAt); err != nil {
				return err
			}
			// Confidence-weighted happy share, iterated in fixed ID order
			// so the float sum is deterministic across runs.
			var happy, total float64
			for _, id := range ids {
				e, ok := fa.Emotions[id]
				if !ok || e.Confidence <= 0 {
					continue
				}
				total += e.Confidence
				if e.Label == emotion.Happy {
					happy += e.Confidence
				}
			}
			v := 0.0
			if total > 0 {
				v = happy / total * 100
			}
			if len(ohWin) == liveSummaryWindow {
				copy(ohWin, ohWin[1:])
				ohWin[len(ohWin)-1] = v
			} else {
				ohWin = append(ohWin, v)
			}
			return nil
		},
		RunEmit: func(env *runEnv, fa *FrameArtifacts) error {
			if !env.live || len(ohWin) == 0 {
				return nil
			}
			var s float64
			for _, v := range ohWin {
				s += v
			}
			env.QueueDerived(metadata.Record{
				Kind: metadata.KindEvent, Frame: fa.Index, FrameEnd: fa.Index + 1,
				Time: fa.FS.Time, Person: sum.Dominant(), Other: -1,
				Label: "live-summary", Value: s / float64(len(ohWin)),
			})
			return nil
		},
	}, nil
}
