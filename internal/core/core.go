// Package core orchestrates the DiEvent pipeline of paper Fig. 1: video
// acquisition → video composition analysis → feature extraction →
// multilayer analysis → metadata repository, producing the summary
// digest on top.
//
// Two vision modes are supported. PixelVision runs the complete
// computer-vision path on rendered frames (face detection, tracking,
// recognition, LBP+NN emotion classification); it is the full
// reproduction of the paper's feature-extraction stage and is priced
// accordingly. GeometricVision replaces the pixel stages with the
// calibrated noisy estimators (the documented OpenFace substitution,
// DESIGN.md §1) and is fast enough for full-length multi-camera events
// and parameter sweeps. Both modes share the gaze math, multilayer
// analysis, metadata store and summariser.
//
// The pipeline itself is a registry-driven stage graph (DESIGN.md §7):
// both visions, the frame-serial analysis chain and the end-of-run
// passes are named Stages declaring the per-(camera, frame) artifacts
// they consume and produce. The graph is dependency-ordered and
// scheduled onto a concurrent engine (DESIGN.md §2): a worker pool
// executes the stateless prepare stages in any order, per-camera
// ordered lanes advance the stateful stages, and a merger reassembles
// frames in index order for the frame-serial stages. Config.Workers
// sets the pool size (default GOMAXPROCS; 1 selects the plain
// sequential loop); every worker count produces byte-identical
// results, and the retained monolithic oracle (oracle.go) proves the
// graph equivalent to the pre-refactor pipeline.
//
// Config.Stages plugs additional registered analyzers into the graph
// (e.g. "attention-span"), and Config.Incremental persists a run
// manifest through the metadata repository so RunIncremental can
// re-run only stale stages — re-deriving one layer without re-decoding
// video (manifest.go).
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/camera"
	"repro/internal/emotion"
	"repro/internal/gaze"
	"repro/internal/img"
	"repro/internal/layers"
	"repro/internal/metadata"
	"repro/internal/parsing"
	"repro/internal/scene"
	"repro/internal/summarize"
	"repro/internal/video"
)

// VisionMode selects the feature-extraction implementation.
type VisionMode uint8

// Vision modes.
const (
	// GeometricVision uses the noisy geometric estimators.
	GeometricVision VisionMode = iota
	// PixelVision runs the full pixel pipeline on rendered frames.
	PixelVision

	numVisionModes
)

// String names the mode.
func (m VisionMode) String() string {
	switch m {
	case GeometricVision:
		return "geometric"
	case PixelVision:
		return "pixel"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Config assembles a pipeline run.
type Config struct {
	// Scenario is the scripted event to analyse (required).
	Scenario scene.Scenario
	// Rig is the camera platform; nil selects the prototype four-corner
	// rig of §III (which requires positive scenario room dimensions).
	Rig *camera.Rig
	// Mode selects the vision path.
	Mode VisionMode
	// Render tunes the synthetic sensor (PixelVision and ParseVideo).
	Render video.RenderOptions
	// Gaze tunes the gaze estimator.
	Gaze gaze.EstimatorOptions
	// Layers tunes the multilayer analysis.
	Layers layers.Options
	// Summarize tunes the digest.
	Summarize summarize.Options
	// Classifier recognises emotions in PixelVision; nil trains a small
	// classifier on synthetic faces at startup.
	Classifier *emotion.Classifier
	// QuantizedInference switches the emotion classifier to int8
	// inference — but only after the float-oracle equivalence gate
	// passes on a held-out synthetic set (the pipeline fails fast
	// otherwise rather than run a quantization that disagrees with the
	// float network). Off by default: the float path is the oracle.
	QuantizedInference bool
	// EmotionNoise is the probability a GeometricVision emotion
	// observation is misread (default 0.05), modelling classifier error.
	EmotionNoise float64
	// RepoDir persists the metadata repository; empty keeps it in
	// memory.
	RepoDir string
	// RepoOptions tune the persistent repository's storage engine
	// (segment size, sync policy); ignored when RepoDir is empty.
	RepoOptions []metadata.Option
	// ParseVideo additionally runs video-composition analysis over the
	// primary camera's rendered footage.
	ParseVideo bool
	// DetectEvery is the PixelVision detector cadence in frames;
	// tracking bridges the gaps (default 3).
	DetectEvery int
	// PixelCameras is how many rig cameras the pixel path analyses
	// (default 1, capped at the rig size). More cameras cost linearly
	// but cover faces the primary camera sees poorly.
	PixelCameras int
	// MaxFrames truncates the event (0 = all frames) — lets callers
	// bound PixelVision costs.
	MaxFrames int
	// Workers is the extraction parallelism: the number of goroutines
	// rendering and detecting concurrently (default GOMAXPROCS; 1
	// forces the plain sequential loop). Results are byte-identical for
	// every worker count — the engine reassembles frames in order.
	Workers int
	// Stages names additional registered analyzer stages to plug into
	// the graph (e.g. "attention-span"); see Registry.
	Stages []string
	// Registry resolves stage names; nil uses the built-in set.
	Registry *Registry
	// Incremental persists the run manifest and the raw look-at layer
	// through the repository, enabling RunIncremental re-runs against
	// this run's output. Off by default: the extra records make the
	// log a superset of a plain run's.
	Incremental bool
	// Degraded keeps the run alive when a stage panics: the stage and
	// every stage consuming its artifacts are quarantined for the rest
	// of the run and reported in Result.Quarantined, while the
	// surviving stages complete. Off by default — a stage panic fails
	// fast, and healthy runs are byte-identical either way.
	Degraded bool
}

// StageTiming reports time spent in one pipeline stage. Serial stages
// (gaze-analysis, multilayer, metadata, summarize) report wall time;
// under parallel extraction (Workers > 1) the feature-extraction entry
// and the per-stage extraction entries aggregate CPU time across
// workers and can exceed the run's wall time.
type StageTiming struct {
	Name     string
	Duration time.Duration
}

// Result is everything a pipeline run produces.
type Result struct {
	// Context is the time-invariant layer derived from the scenario.
	Context layers.Context
	// Layers is the multilayer analysis output.
	Layers *layers.Result
	// Parse is the composition hierarchy (nil unless ParseVideo).
	Parse *parsing.Parse
	// Summary is the event digest.
	Summary *summarize.Summary
	// Attention is the attention-span analyzer's derived layer (nil
	// unless the "attention-span" stage was enabled).
	Attention *AttentionResult
	// Repo is the populated metadata repository. The caller owns Close.
	Repo *metadata.Repository
	// Timings lists per-stage wall time.
	Timings []StageTiming
	// FramesAnalyzed is the number of frames pushed through analysis.
	FramesAnalyzed int
	// StaleStages and ReusedStages report an incremental run's
	// manifest diff: which stages re-ran and which extraction stages
	// were replayed from the previous repository. Empty on full runs.
	StaleStages, ReusedStages []string
	// Phases is the dining-phase stage's decoded activity timeline (nil
	// unless the "dining-phase" stage was enabled on a finite run).
	Phases []PhaseSpan
	// Interrupted reports that a streaming run's context was cancelled
	// mid-stream: the result covers the FramesAnalyzed frames consumed
	// before cancellation, finalized normally.
	Interrupted bool
	// Quarantined reports the stages disabled mid-run after a panic
	// (Config.Degraded only); empty on healthy and strict runs. Fields
	// a quarantined stage would have filled (Layers, Summary,
	// Attention, …) may be nil — consumers must check.
	Quarantined []StageFailure
}

// ErrBadConfig reports an unusable configuration.
var ErrBadConfig = errors.New("core: bad config")

// Pipeline is a configured, reusable DiEvent pipeline.
type Pipeline struct {
	cfg        Config
	sim        *scene.Simulator
	rig        *camera.Rig
	reg        *Registry
	stageNames []string
}

// New validates the configuration and prepares a pipeline.
func New(cfg Config) (*Pipeline, error) {
	sim, err := scene.NewSimulator(cfg.Scenario)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.Mode >= numVisionModes {
		return nil, fmt.Errorf("core: unknown vision mode %d (have %v, %v): %w",
			cfg.Mode, GeometricVision, PixelVision, ErrBadConfig)
	}
	rig := cfg.Rig
	if rig == nil {
		if cfg.Scenario.RoomW <= 0 || cfg.Scenario.RoomD <= 0 {
			return nil, fmt.Errorf("core: nil rig needs the default prototype rig, which requires positive scenario room dimensions (got %v x %v); pass Config.Rig explicitly: %w",
				cfg.Scenario.RoomW, cfg.Scenario.RoomD, ErrBadConfig)
		}
		rig, err = camera.PrototypeRig(cfg.Scenario.RoomW, cfg.Scenario.RoomD)
		if err != nil {
			return nil, fmt.Errorf("core: default rig: %w", err)
		}
	}
	if cfg.EmotionNoise < 0 || cfg.EmotionNoise >= 1 {
		return nil, fmt.Errorf("core: emotion noise %v outside [0,1): %w", cfg.EmotionNoise, ErrBadConfig)
	}
	if cfg.DetectEvery == 0 {
		cfg.DetectEvery = 3
	}
	if cfg.DetectEvery < 0 {
		return nil, fmt.Errorf("core: detect cadence %d must be positive: %w", cfg.DetectEvery, ErrBadConfig)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("core: worker count %d must be ≥ 0 (0 = GOMAXPROCS): %w", cfg.Workers, ErrBadConfig)
	}
	if cfg.MaxFrames < 0 {
		return nil, fmt.Errorf("core: max frames %d must be ≥ 0 (0 = all frames): %w", cfg.MaxFrames, ErrBadConfig)
	}
	if cfg.PixelCameras < 0 {
		return nil, fmt.Errorf("core: pixel cameras %d must be ≥ 0 (0 = primary only): %w", cfg.PixelCameras, ErrBadConfig)
	}
	if cfg.Mode == PixelVision {
		for c := 0; c < pixelCamCount(cfg, rig); c++ {
			if in := rig.Cameras[c].In; in.W <= 0 || in.H <= 0 {
				return nil, fmt.Errorf("core: pixel vision camera %q has no intrinsics (%dx%d sensor); the renderer needs a calibrated camera: %w",
					rig.Cameras[c].Name, in.W, in.H, ErrBadConfig)
			}
		}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	names, err := resolveStageNames(cfg, reg)
	if err != nil {
		return nil, err
	}
	return &Pipeline{cfg: cfg, sim: sim, rig: rig, reg: reg, stageNames: names}, nil
}

// pixelCamCount is the number of rig cameras the pixel path analyses.
func pixelCamCount(cfg Config, rig *camera.Rig) int {
	n := cfg.PixelCameras
	if n <= 0 {
		n = 1
	}
	if n > len(rig.Cameras) {
		n = len(rig.Cameras)
	}
	return n
}

// resolveStageNames assembles the run's stage list: the mode's
// extraction set, the frame-serial analysis chain, the requested
// extras, and the end-of-run stages.
func resolveStageNames(cfg Config, reg *Registry) ([]string, error) {
	var names []string
	switch cfg.Mode {
	case GeometricVision:
		names = append(names, StageGeoGaze, StageGeoEmotion, StageCollectGaze, StageFuseEmotions)
	case PixelVision:
		names = append(names, StageRender, StageDetect, StageTrack, StageClassify, StageFuseEmotions, StagePxGaze)
	}
	names = append(names, StageGazeAnalysis, StageMultilayer, StageObservations)
	if cfg.ParseVideo {
		names = append(names, StageVideoParsing)
	}
	names = append(names, StageDerived)
	if cfg.Incremental {
		names = append(names, StageManifest)
	}
	names = append(names, StageSummarize)
	// Extras go last in request order; scheduling is by phase, so the
	// position in this list only breaks ties within a phase. Validate
	// against the complete base set so naming a built-in end-of-run
	// stage fails here, at New, not mid-run.
	for _, extra := range cfg.Stages {
		if !reg.Has(extra) {
			return nil, fmt.Errorf("core: unknown stage %q in Config.Stages (registered: %v): %w", extra, reg.Names(), ErrBadConfig)
		}
		for _, have := range names {
			if have == extra {
				return nil, fmt.Errorf("core: stage %q already part of the %v pipeline: %w", extra, cfg.Mode, ErrBadConfig)
			}
		}
		names = append(names, extra)
	}
	return names, nil
}

// StageNames lists the resolved stage graph in request order.
func (p *Pipeline) StageNames() []string {
	return append([]string(nil), p.stageNames...)
}

// Context builds the time-invariant layer from the scenario.
func (p *Pipeline) Context() layers.Context {
	return contextOf(p.sim, p.cfg)
}

// contextOf derives the time-invariant layer.
func contextOf(sim *scene.Simulator, cfg Config) layers.Context {
	ctx := layers.Context{
		Location: "meeting room",
		Occasion: cfg.Scenario.Name,
	}
	for _, ps := range sim.Persons() {
		ctx.Participants = append(ctx.Participants, layers.Participant{
			ID: ps.ID, Name: ps.Name, Color: ps.Color,
		})
	}
	return ctx
}

// metadataBatch is how many raw records buffer before one repository
// append pays the lock and log flush.
const metadataBatch = 256

// runEnv is one run's shared mutable state, threaded through every
// stage callback. Custom stages reach it through the exported Env
// alias and its accessors.
type runEnv struct {
	graph     *stageGraph
	res       *Result
	repo      *metadata.Repository
	timer     *stageTimer
	numFrames int
	identity  string
	// quar is the degraded-mode quarantine table; nil on strict runs
	// (stages are then invoked directly, with no recover).
	quar *stageQuarantine
	// pending is the raw-layer record batch queue (see Queue).
	pending []metadata.Record

	// Streaming state (RunStream; all zero on plain runs). ring holds
	// the last len(ring) merged frames so windowed stages can reach back
	// through Window; a slot is overwritten — evicting its frame — as
	// soon as no stage's declared Window can still reference it.
	ring     []*FrameArtifacts
	curFrame int
	// framesDone counts frames fully through the frame phase, so an
	// interrupted stream reports exactly what it consumed.
	framesDone int
	live       bool // emit live- records at stage Emit ticks
	bounded    bool // drain/trim derived state at Emit ticks
	discard    bool // drop queued raw records (monitoring-only stream)
}

// Env is one run's shared state as seen by stage callbacks.
type Env = runEnv

// Queue buffers a raw-layer record for the next batched append (paid
// once per metadataBatch records). End-of-run stages writing derived
// layers should append through Repository directly instead.
func (env *runEnv) Queue(recs ...metadata.Record) {
	if env.discard {
		return
	}
	env.pending = append(env.pending, recs...)
}

// QueueDerived buffers a live derived record from a RunEmit tick. Like
// Queue but exempt from DiscardRecords: a monitoring-only stream drops
// the raw per-frame layer yet keeps its live derived output.
func (env *runEnv) QueueDerived(recs ...metadata.Record) {
	env.pending = append(env.pending, recs...)
}

// Live reports whether the run is a live stream: windowed stages emit
// live- records from RunEmit only when set.
func (env *runEnv) Live() bool { return env.live }

// Bounded reports whether the run must hold memory steady on unbounded
// streams: windowed stages drain and trim accumulated derived state at
// their Emit ticks when set.
func (env *runEnv) Bounded() bool { return env.bounded }

// Window returns the merged artifacts of the frame k frames before the
// current one (k = 0 is the current frame), or nil once the frame has
// been evicted — k beyond the stage's declared Window, or before the
// stream's first frame.
func (env *runEnv) Window(k int) *FrameArtifacts {
	if k < 0 || env.ring == nil || k >= len(env.ring) {
		return nil
	}
	idx := env.curFrame - k
	if idx < 0 {
		return nil
	}
	fa := env.ring[idx%len(env.ring)]
	if fa == nil || fa.Index != idx {
		return nil
	}
	return fa
}

// Result is the run's accumulating result (Layers is nil until the
// multilayer stage finalizes).
func (env *runEnv) Result() *Result { return env.res }

// Repository is the run's metadata repository.
func (env *runEnv) Repository() *metadata.Repository { return env.repo }

// Frames is the number of frames this run analyses.
func (env *runEnv) Frames() int { return env.numFrames }

// flushIfFull appends the pending batch once it reaches metadataBatch
// records, under the metadata timer.
func (env *runEnv) flushIfFull() error {
	if len(env.pending) < metadataBatch {
		return nil
	}
	env.timer.start("metadata")
	err := env.repo.AppendBatch(env.pending)
	env.pending = env.pending[:0]
	env.timer.stop("metadata")
	if err != nil {
		// The batch spans records from up to metadataBatch earlier
		// frames, so don't blame the frame that triggered the flush.
		return fmt.Errorf("core: flushing observations: %w", err)
	}
	return nil
}

// buildRunGraph resolves and builds the run's stage graph. The
// incremental flag forces manifest-keeping (RunIncremental implies it).
func (p *Pipeline) buildRunGraph(incremental bool) (*stageGraph, *stageBuild, error) {
	return p.buildRunGraphFrames(incremental, 0)
}

// buildRunGraphFrames additionally overrides the run's frame count —
// how RunStream sizes stages for a cycled unbounded stream (0 keeps the
// scenario's own length, capped by MaxFrames).
func (p *Pipeline) buildRunGraphFrames(incremental bool, framesOverride int) (*stageGraph, *stageBuild, error) {
	cfg := p.cfg
	if incremental {
		cfg.Incremental = true
	}
	names := p.stageNames
	if incremental && !p.cfg.Incremental {
		var err error
		if names, err = resolveStageNames(cfg, p.reg); err != nil {
			return nil, nil, err
		}
	}
	numFrames := p.sim.NumFrames()
	if cfg.MaxFrames > 0 && cfg.MaxFrames < numFrames {
		numFrames = cfg.MaxFrames
	}
	if framesOverride > 0 {
		numFrames = framesOverride
	}
	ctx := p.Context()
	ids := make([]int, 0, len(ctx.Participants))
	for _, pp := range ctx.Participants {
		ids = append(ids, pp.ID)
	}
	nCams := 1
	if cfg.Mode == PixelVision {
		nCams = pixelCamCount(cfg, p.rig)
	}
	b := &stageBuild{
		cfg: cfg, sim: p.sim, rig: p.rig,
		ids: ids, nCams: nCams, numFrames: numFrames,
	}
	g, err := buildGraph(p.reg, names, b)
	if err != nil {
		return nil, nil, err
	}
	return g, b, nil
}

// Run executes the pipeline.
func (p *Pipeline) Run() (*Result, error) {
	graph, b, err := p.buildRunGraph(false)
	if err != nil {
		return nil, err
	}
	return p.runGraph(graph, b, nil)
}

// streamRun is the extra drive state of a RunStream invocation; nil for
// plain end-of-run executions.
type streamRun struct {
	ctx     context.Context
	frameAt func(int) scene.FrameState // nil = the simulator's FrameState
	live    bool
	bounded bool
	discard bool
	// flushEvery forces the pending raw-record batch out every N frames
	// (in addition to the metadataBatch size trigger), bounding the
	// append→follower latency of a live stream. 0 keeps batch-only.
	flushEvery int
	// repo, when non-nil, is a caller-owned repository the stream
	// ingests into — how in-process followers Tail data the run is still
	// producing. The caller keeps ownership of Close.
	repo *metadata.Repository
	// monitor, when non-nil, observes the stream after every frame — the
	// bounded-memory gate's probe point.
	monitor func(frame int)
}

// runGraph drives one run of a built stage graph: full extraction
// through the engine when rd is nil, the incremental replay loop
// otherwise.
func (p *Pipeline) runGraph(graph *stageGraph, b *stageBuild, rd *replayData) (*Result, error) {
	return p.runGraphStream(graph, b, rd, nil)
}

// runGraphStream is runGraph with an optional streaming drive: a frame
// source that may cycle an unbounded synthetic stream, cancellation,
// windowed-stage Emit ticks, and bounded-memory eviction.
func (p *Pipeline) runGraphStream(graph *stageGraph, b *stageBuild, rd *replayData, sr *streamRun) (*Result, error) {
	cfg := b.cfg

	var repo *metadata.Repository
	var err error
	ownedRepo := true
	switch {
	case sr != nil && sr.repo != nil:
		repo = sr.repo
		ownedRepo = false
	case cfg.RepoDir != "":
		repo, err = metadata.Open(cfg.RepoDir, cfg.RepoOptions...)
		if err != nil {
			return nil, fmt.Errorf("core: opening repository: %w", err)
		}
	default:
		repo = metadata.NewMem()
	}
	// On any error return the repository must be closed: callers never
	// see it, and a persistent repository holds the directory's
	// exclusive lease until closed — leaking it would wedge every
	// retry on the same RepoDir with ErrLocked for the process
	// lifetime. (Caller-owned streaming repositories stay the caller's:
	// followers may still be tailing them.)
	finished := false
	defer func() {
		if !finished && ownedRepo {
			repo.Close()
		}
	}()

	ctx := p.Context()
	res := &Result{Context: ctx, Repo: repo}
	timer := newStageTimer()
	env := &runEnv{
		graph: graph, res: res, repo: repo, timer: timer,
		numFrames: b.numFrames, identity: p.runIdentity(b.numFrames, b.nCams),
		pending: make([]metadata.Record, 0, metadataBatch),
	}
	// The frame ring is sized to the widest declared stage window, so a
	// frame's artifacts are evicted (slot overwritten) exactly when no
	// window can still reference them — the memory bound of an unbounded
	// stream.
	maxWindow := 0
	for _, st := range graph.byPhase[PhaseFrame] {
		if st.Window > maxWindow {
			maxWindow = st.Window
		}
	}
	env.ring = make([]*FrameArtifacts, maxWindow+1)
	if sr != nil {
		env.live = sr.live
		env.bounded = sr.bounded
		env.discard = sr.discard
	}
	if cfg.Degraded {
		env.quar = newStageQuarantine(graph)
	}
	if rd != nil {
		res.StaleStages = rd.stale
		res.ReusedStages = rd.reused
	}

	// Pre-register the timing entries in graph order so Timings stays
	// deterministic even when workers race to report first.
	if b.numFrames > 0 {
		timer.add("feature-extraction", 0)
		for _, ph := range []StagePhase{PhasePrepare, PhaseOrdered, PhaseMerge, PhaseFrame} {
			for _, st := range graph.byPhase[ph] {
				if rd == nil || rd.rerun[st.Name] || ph == PhaseFrame {
					timer.add(st.Name, 0)
				}
			}
		}
		timer.add("metadata", 0)
	}

	// Context records first.
	if err := writeContext(repo, ctx); err != nil {
		return nil, err
	}

	if rd == nil {
		workers := cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		vision := newGraphVision(graph, env, b.nCams)
		// RunEmit fires only on live/bounded streams, so plain finite
		// runs (streamed or not) stay byte-identical to the end-of-run
		// oracle.
		emitting := sr != nil && (sr.live || sr.bounded)
		sink := func(i int, fs scene.FrameState, out any) error {
			fa := out.(*FrameArtifacts)
			env.curFrame = i
			env.ring[i%len(env.ring)] = fa
			for _, st := range graph.byPhase[PhaseFrame] {
				timer.start(st.Name)
				err := env.invoke(st, func() error { return st.RunFrame(env, fa) })
				timer.stop(st.Name)
				if err != nil {
					return fmt.Errorf("core: frame %d: stage %s: %w", i, st.Name, err)
				}
			}
			if emitting {
				for _, st := range graph.byPhase[PhaseFrame] {
					if st.RunEmit == nil || (i+1)%st.Emit != 0 {
						continue
					}
					timer.start(st.Name)
					err := env.invoke(st, func() error { return st.RunEmit(env, fa) })
					timer.stop(st.Name)
					if err != nil {
						return fmt.Errorf("core: frame %d: stage %s emit: %w", i, st.Name, err)
					}
				}
			}
			if err := env.flushIfFull(); err != nil {
				return err
			}
			if sr != nil && sr.flushEvery > 0 && (i+1)%sr.flushEvery == 0 && len(env.pending) > 0 {
				env.timer.start("metadata")
				err := repo.AppendBatch(env.pending)
				env.pending = env.pending[:0]
				env.timer.stop("metadata")
				if err != nil {
					return fmt.Errorf("core: flushing observations: %w", err)
				}
			}
			env.framesDone = i + 1
			if sr != nil && sr.monitor != nil {
				sr.monitor(i)
			}
			return nil
		}
		var ctx context.Context
		frameAt := p.sim.FrameState
		if sr != nil {
			ctx = sr.ctx
			if sr.frameAt != nil {
				frameAt = sr.frameAt
			}
		}
		if err := p.runFrames(ctx, frameAt, b.numFrames, workers, vision, timer, sink); err != nil {
			// A cancelled streaming context ends the stream gracefully:
			// the frames consumed so far are finalized into a partial
			// result instead of being thrown away.
			if sr == nil || sr.ctx == nil || sr.ctx.Err() == nil ||
				!(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
				return nil, err
			}
			res.Interrupted = true
		}
	} else {
		if err := p.runReplay(env, rd); err != nil {
			return nil, err
		}
	}

	// Flush the raw-layer tail before any derived records are written,
	// keeping the record log's layer order identical to the monolith's.
	timer.start("metadata")
	if len(env.pending) > 0 {
		if err := repo.AppendBatch(env.pending); err != nil {
			return nil, fmt.Errorf("core: flushing observations: %w", err)
		}
		env.pending = env.pending[:0]
	}
	timer.stop("metadata")

	res.FramesAnalyzed = b.numFrames
	if res.Interrupted {
		res.FramesAnalyzed = env.framesDone
	}

	// Frame-stage finalizers (multilayer finalize, analyzer summaries),
	// then the end-of-run stages, in graph order.
	for _, st := range graph.byPhase[PhaseFrame] {
		if st.RunFinal == nil {
			continue
		}
		timer.start(st.Name)
		err := env.invoke(st, func() error { return st.RunFinal(env) })
		timer.stop(st.Name)
		if err != nil {
			return nil, fmt.Errorf("core: stage %s: %w", st.Name, err)
		}
	}
	for _, st := range graph.byPhase[PhaseFinal] {
		name := st.Name
		if name == StageDerived || name == StageManifest {
			name = "metadata"
		}
		timer.start(name)
		err := env.invoke(st, func() error { return st.RunFinal(env) })
		timer.stop(name)
		if err != nil {
			return nil, fmt.Errorf("core: stage %s: %w", st.Name, err)
		}
	}

	timer.start("metadata")
	if err := repo.Flush(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	timer.stop("metadata")

	res.Timings = timer.report()
	if env.quar != nil {
		res.Quarantined = env.quar.failures()
	}
	finished = true
	return res, nil
}

// writeContext stores the time-invariant layer.
func writeContext(repo *metadata.Repository, ctx layers.Context) error {
	recs := []metadata.Record{
		{Kind: metadata.KindContext, Frame: -1, FrameEnd: -1, Person: -1, Other: -1,
			Label: "occasion", Tags: map[string]string{"value": ctx.Occasion}},
		{Kind: metadata.KindContext, Frame: -1, FrameEnd: -1, Person: -1, Other: -1,
			Label: "location", Tags: map[string]string{"value": ctx.Location}},
	}
	for _, pp := range ctx.Participants {
		recs = append(recs, metadata.Record{
			Kind: metadata.KindContext, Frame: -1, FrameEnd: -1,
			Person: pp.ID, Other: -1, Label: "participant",
			Tags: map[string]string{"name": pp.Name, "color": pp.Color},
		})
	}
	if err := repo.AppendBatch(recs); err != nil {
		return fmt.Errorf("core: writing context: %w", err)
	}
	return nil
}

// writeDerived stores events, alerts, summary counts, shots and scenes.
// ecEventRecord is the eye-contact event's record schema, shared by the
// live (RunEmit) and end-of-run emission paths.
func ecEventRecord(e layers.ECEvent) metadata.Record {
	return metadata.Record{
		Kind: metadata.KindEvent, Frame: e.Start, FrameEnd: e.End,
		Time: e.StartTime, Person: e.A, Other: e.B,
		Label: "eye-contact", Value: float64(e.Frames()),
	}
}

// alertRecord is the alert's record schema, shared the same way.
func alertRecord(a layers.Alert) metadata.Record {
	return metadata.Record{
		Kind: metadata.KindEvent, Frame: a.Frame, FrameEnd: a.Frame + 1,
		Time: a.Time, Person: a.Person, Other: a.Other,
		Label: "alert-" + a.Kind.String(),
		Tags:  map[string]string{"detail": a.Detail},
	}
}

func writeDerived(repo *metadata.Repository, res *Result) error {
	var recs []metadata.Record
	// Fresh* excludes events and alerts already drained live by the
	// multilayer stage's rolling pass, so each surfaces exactly once.
	for _, e := range res.Layers.FreshEvents() {
		recs = append(recs, ecEventRecord(e))
	}
	for _, a := range res.Layers.FreshAlerts() {
		recs = append(recs, alertRecord(a))
	}
	sum := res.Layers.Summary
	for i, from := range sum.IDs {
		for j, to := range sum.IDs {
			if sum.Counts[i][j] == 0 {
				continue
			}
			recs = append(recs, metadata.Record{
				Kind: metadata.KindEvent, Frame: 0, FrameEnd: res.FramesAnalyzed,
				Person: from, Other: to, Label: "lookat-count",
				Value: float64(sum.Counts[i][j]),
			})
		}
	}
	if res.Parse != nil {
		for _, b := range res.Parse.Boundaries {
			recs = append(recs, metadata.Record{
				Kind: metadata.KindEvent, Frame: b.Frame, FrameEnd: b.Frame + 1,
				Person: -1, Other: -1, Label: "shot-boundary", Value: b.Score,
			})
		}
		for si, s := range res.Parse.Shots {
			recs = append(recs, metadata.Record{
				Kind: metadata.KindEvent, Frame: s.Start, FrameEnd: s.End,
				Person: -1, Other: -1, Label: "shot", Value: float64(si),
				Tags: map[string]string{"keyframe": fmt.Sprint(s.KeyFrame)},
			})
		}
	}
	if err := repo.AppendBatch(recs); err != nil {
		return fmt.Errorf("writing derived records: %w", err)
	}
	return nil
}

// trainDefaultClassifier fits a small LBP+NN model on synthetic faces.
func trainDefaultClassifier() (*emotion.Classifier, error) {
	clf, err := emotion.NewClassifier(48, 1)
	if err != nil {
		return nil, fmt.Errorf("core: building classifier: %w", err)
	}
	ds := emotion.GenerateDataset(30, 7)
	if _, err := clf.Train(ds, emotion.TrainOptions{
		Epochs: 50, Seed: 8, LearningRate: 0.01,
	}); err != nil {
		return nil, fmt.Errorf("core: training classifier: %w", err)
	}
	return clf, nil
}

// confuse returns a plausible misclassification of l.
func confuse(l emotion.Label, r *tinyRand) emotion.Label {
	confusables := map[emotion.Label][]emotion.Label{
		emotion.Neutral:  {emotion.Sad, emotion.Happy},
		emotion.Happy:    {emotion.Neutral, emotion.Surprise},
		emotion.Sad:      {emotion.Neutral, emotion.Angry},
		emotion.Angry:    {emotion.Disgust, emotion.Sad},
		emotion.Disgust:  {emotion.Angry, emotion.Sad},
		emotion.Fear:     {emotion.Surprise, emotion.Sad},
		emotion.Surprise: {emotion.Fear, emotion.Happy},
	}
	opts := confusables[l]
	if len(opts) == 0 {
		return l
	}
	return opts[int(r.u()%uint64(len(opts)))]
}

// tinyRand is the deterministic emotion-noise stream.
type tinyRand struct{ s uint64 }

func emoRand(seed int64, frame, person int) *tinyRand {
	return &tinyRand{s: uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(frame)*0xBF58476D1CE4E5B9 ^ uint64(person)*0x94D049BB133111EB}
}

func (t *tinyRand) u() uint64 {
	t.s += 0x9E3779B97F4A7C15
	z := t.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (t *tinyRand) f() float64 { return float64(t.u()>>11) / (1 << 53) }

// clampBox keeps a tracker box inside the frame.
func clampBox(b img.Rect, g *img.Gray) img.Rect {
	if b.X < 0 {
		b.W += b.X
		b.X = 0
	}
	if b.Y < 0 {
		b.H += b.Y
		b.Y = 0
	}
	if b.X+b.W > g.W {
		b.W = g.W - b.X
	}
	if b.Y+b.H > g.H {
		b.H = g.H - b.Y
	}
	if b.W < 1 {
		b.W = 1
	}
	if b.H < 1 {
		b.H = 1
	}
	return b
}

// --- stage timer ---

// stageTimer accumulates per-stage durations. Safe for concurrent use:
// engine workers add extraction time from many goroutines while the
// merger times the downstream stages. Under parallel extraction the
// "feature-extraction" entry is therefore aggregate CPU time across
// workers, which can exceed wall time.
type stageTimer struct {
	mu      sync.Mutex
	order   []string
	total   map[string]time.Duration
	started map[string]time.Time
}

func newStageTimer() *stageTimer {
	return &stageTimer{
		total:   make(map[string]time.Duration),
		started: make(map[string]time.Time),
	}
}

// touch registers the stage in report order. Caller holds mu.
func (t *stageTimer) touch(name string) {
	if _, ok := t.total[name]; !ok {
		t.order = append(t.order, name)
		t.total[name] = 0
	}
}

func (t *stageTimer) start(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touch(name)
	t.started[name] = time.Now()
}

func (t *stageTimer) stop(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.started[name]; ok {
		t.total[name] += time.Since(s)
		delete(t.started, name)
	}
}

// add accumulates an externally measured duration — how concurrent
// workers report time without holding a start/stop pair open.
func (t *stageTimer) add(name string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touch(name)
	t.total[name] += d
}

func (t *stageTimer) report() []StageTiming {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageTiming, 0, len(t.order))
	for _, n := range t.order {
		out = append(out, StageTiming{Name: n, Duration: t.total[n]})
	}
	return out
}
