// Package core orchestrates the DiEvent pipeline of paper Fig. 1: video
// acquisition → video composition analysis → feature extraction →
// multilayer analysis → metadata repository, producing the summary
// digest on top.
//
// Two vision modes are supported. PixelVision runs the complete
// computer-vision path on rendered frames (face detection, tracking,
// recognition, LBP+NN emotion classification); it is the full
// reproduction of the paper's feature-extraction stage and is priced
// accordingly. GeometricVision replaces the pixel stages with the
// calibrated noisy estimators (the documented OpenFace substitution,
// DESIGN.md §1) and is fast enough for full-length multi-camera events
// and parameter sweeps. Both modes share the gaze math, multilayer
// analysis, metadata store and summariser.
//
// Extraction runs on a concurrent engine (DESIGN.md §2): a worker pool
// executes the stateless per-(camera, frame) stages — rendering and
// face detection — in any order, while per-camera ordered streams
// advance the stateful stages (tracking, recognition, classification)
// and a merger reassembles frames in index order before the multilayer
// analysis. Config.Workers sets the pool size (default GOMAXPROCS;
// 1 selects the plain sequential loop); every worker count produces
// byte-identical results. Hot-path buffers — rendered frames, face
// crops, LBP scratch, network activations — are pooled, so steady-state
// extraction allocates almost nothing.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/camera"
	"repro/internal/emotion"
	"repro/internal/face"
	"repro/internal/gaze"
	"repro/internal/img"
	"repro/internal/layers"
	"repro/internal/metadata"
	"repro/internal/parsing"
	"repro/internal/scene"
	"repro/internal/summarize"
	"repro/internal/video"
)

// VisionMode selects the feature-extraction implementation.
type VisionMode uint8

// Vision modes.
const (
	// GeometricVision uses the noisy geometric estimators.
	GeometricVision VisionMode = iota
	// PixelVision runs the full pixel pipeline on rendered frames.
	PixelVision
)

// String names the mode.
func (m VisionMode) String() string {
	switch m {
	case GeometricVision:
		return "geometric"
	case PixelVision:
		return "pixel"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Config assembles a pipeline run.
type Config struct {
	// Scenario is the scripted event to analyse (required).
	Scenario scene.Scenario
	// Rig is the camera platform; nil selects the prototype four-corner
	// rig of §III.
	Rig *camera.Rig
	// Mode selects the vision path.
	Mode VisionMode
	// Render tunes the synthetic sensor (PixelVision and ParseVideo).
	Render video.RenderOptions
	// Gaze tunes the gaze estimator.
	Gaze gaze.EstimatorOptions
	// Layers tunes the multilayer analysis.
	Layers layers.Options
	// Summarize tunes the digest.
	Summarize summarize.Options
	// Classifier recognises emotions in PixelVision; nil trains a small
	// classifier on synthetic faces at startup.
	Classifier *emotion.Classifier
	// EmotionNoise is the probability a GeometricVision emotion
	// observation is misread (default 0.05), modelling classifier error.
	EmotionNoise float64
	// RepoDir persists the metadata repository; empty keeps it in
	// memory.
	RepoDir string
	// RepoOptions tune the persistent repository's storage engine
	// (segment size, sync policy); ignored when RepoDir is empty.
	RepoOptions []metadata.Option
	// ParseVideo additionally runs video-composition analysis over the
	// primary camera's rendered footage.
	ParseVideo bool
	// DetectEvery is the PixelVision detector cadence in frames;
	// tracking bridges the gaps (default 3).
	DetectEvery int
	// PixelCameras is how many rig cameras the pixel path analyses
	// (default 1, capped at the rig size). More cameras cost linearly
	// but cover faces the primary camera sees poorly.
	PixelCameras int
	// MaxFrames truncates the event (0 = all frames) — lets callers
	// bound PixelVision costs.
	MaxFrames int
	// Workers is the extraction parallelism: the number of goroutines
	// rendering and detecting concurrently (default GOMAXPROCS; 1
	// forces the plain sequential loop). Results are byte-identical for
	// every worker count — the engine reassembles frames in order.
	Workers int
}

// StageTiming reports time spent in one pipeline stage. Serial stages
// (gaze-analysis, multilayer, metadata, summarize) report wall time;
// under parallel extraction (Workers > 1) the feature-extraction entry
// aggregates CPU time across workers and can exceed the run's wall
// time.
type StageTiming struct {
	Name     string
	Duration time.Duration
}

// Result is everything a pipeline run produces.
type Result struct {
	// Context is the time-invariant layer derived from the scenario.
	Context layers.Context
	// Layers is the multilayer analysis output.
	Layers *layers.Result
	// Parse is the composition hierarchy (nil unless ParseVideo).
	Parse *parsing.Parse
	// Summary is the event digest.
	Summary *summarize.Summary
	// Repo is the populated metadata repository. The caller owns Close.
	Repo *metadata.Repository
	// Timings lists per-stage wall time.
	Timings []StageTiming
	// FramesAnalyzed is the number of frames pushed through analysis.
	FramesAnalyzed int
}

// ErrBadConfig reports an unusable configuration.
var ErrBadConfig = errors.New("core: bad config")

// Pipeline is a configured, reusable DiEvent pipeline.
type Pipeline struct {
	cfg Config
	sim *scene.Simulator
	rig *camera.Rig
}

// New validates the configuration and prepares a pipeline.
func New(cfg Config) (*Pipeline, error) {
	sim, err := scene.NewSimulator(cfg.Scenario)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rig := cfg.Rig
	if rig == nil {
		rig, err = camera.PrototypeRig(cfg.Scenario.RoomW, cfg.Scenario.RoomD)
		if err != nil {
			return nil, fmt.Errorf("core: default rig: %w", err)
		}
	}
	if cfg.EmotionNoise < 0 || cfg.EmotionNoise >= 1 {
		return nil, fmt.Errorf("core: emotion noise %v outside [0,1): %w", cfg.EmotionNoise, ErrBadConfig)
	}
	if cfg.DetectEvery == 0 {
		cfg.DetectEvery = 3
	}
	if cfg.DetectEvery < 0 {
		return nil, fmt.Errorf("core: detect cadence %d: %w", cfg.DetectEvery, ErrBadConfig)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("core: worker count %d: %w", cfg.Workers, ErrBadConfig)
	}
	return &Pipeline{cfg: cfg, sim: sim, rig: rig}, nil
}

// Context builds the time-invariant layer from the scenario.
func (p *Pipeline) Context() layers.Context {
	sc := p.cfg.Scenario
	ctx := layers.Context{
		Location: "meeting room",
		Occasion: sc.Name,
	}
	for _, ps := range p.sim.Persons() {
		ctx.Participants = append(ctx.Participants, layers.Participant{
			ID: ps.ID, Name: ps.Name, Color: ps.Color,
		})
	}
	return ctx
}

// Run executes the pipeline.
func (p *Pipeline) Run() (*Result, error) {
	cfg := p.cfg
	ctx := p.Context()

	numFrames := p.sim.NumFrames()
	if cfg.MaxFrames > 0 && cfg.MaxFrames < numFrames {
		numFrames = cfg.MaxFrames
	}

	// Metadata repository.
	var repo *metadata.Repository
	var err error
	if cfg.RepoDir != "" {
		repo, err = metadata.Open(cfg.RepoDir, cfg.RepoOptions...)
		if err != nil {
			return nil, fmt.Errorf("core: opening repository: %w", err)
		}
	} else {
		repo = metadata.NewMem()
	}

	// On any error return the repository must be closed: callers never
	// see it, and a persistent repository holds the directory's
	// exclusive lease until closed — leaking it would wedge every
	// retry on the same RepoDir with ErrLocked for the process
	// lifetime.
	finished := false
	defer func() {
		if !finished {
			repo.Close()
		}
	}()

	res := &Result{Context: ctx, Repo: repo}
	timer := newStageTimer()

	// Context records first.
	if err := p.writeContext(repo, ctx); err != nil {
		return nil, err
	}

	analyzer, err := layers.NewAnalyzer(ctx, cfg.Layers)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	var vision frameVision
	switch cfg.Mode {
	case GeometricVision:
		vision = newGeometricVision(cfg, p.sim, p.rig)
	case PixelVision:
		vision, err = newPixelVision(cfg, p.sim, p.rig)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown vision mode %d: %w", cfg.Mode, ErrBadConfig)
	}

	ids := make([]int, 0, len(ctx.Participants))
	for _, pp := range ctx.Participants {
		ids = append(ids, pp.ID)
	}
	det := gaze.NewDetector()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Per-frame emotion observations buffer into batches so the
	// repository lock and log flush are paid once per metadataBatch
	// frames, not once per record. Person IDs are sorted so the record
	// log is byte-identical across runs and worker counts (map
	// iteration order is not).
	const metadataBatch = 256
	pending := make([]metadata.Record, 0, metadataBatch)
	pids := make([]int, 0, len(ids))

	sink := func(i int, fs scene.FrameState, obs []gaze.Observation, emotions map[int]layers.EmotionObs) error {
		timer.start("gaze-analysis")
		lookAt, err := det.LookAt(obs, p.rig, ids)
		timer.stop("gaze-analysis")
		if err != nil {
			return fmt.Errorf("core: frame %d: %w", i, err)
		}

		timer.start("multilayer")
		err = analyzer.Push(layers.FrameInput{
			Index: i, Time: fs.Time, LookAt: lookAt, Emotions: emotions,
		})
		timer.stop("multilayer")
		if err != nil {
			return fmt.Errorf("core: frame %d: %w", i, err)
		}

		// Per-frame observations into the repository (emotions only;
		// gaze edges are stored as events at the end — per-edge
		// per-frame rows would dwarf everything else).
		timer.start("metadata")
		pids = pids[:0]
		for id := range emotions {
			pids = append(pids, id)
		}
		sort.Ints(pids)
		for _, id := range pids {
			e := emotions[id]
			pending = append(pending, metadata.Record{
				Kind: metadata.KindObservation, Frame: i, FrameEnd: i + 1,
				Time: fs.Time, Person: id, Other: -1,
				Label: e.Label.String(), Value: e.Confidence,
			})
		}
		var aerr error
		if len(pending) >= metadataBatch {
			aerr = repo.AppendBatch(pending)
			pending = pending[:0]
		}
		timer.stop("metadata")
		if aerr != nil {
			// The batch spans records from up to metadataBatch earlier
			// frames, so don't blame the frame that triggered the flush.
			return fmt.Errorf("core: flushing observations: %w", aerr)
		}
		return nil
	}

	if err := p.runFrames(numFrames, workers, vision, timer, sink); err != nil {
		return nil, err
	}

	timer.start("metadata")
	if len(pending) > 0 {
		if err := repo.AppendBatch(pending); err != nil {
			return nil, fmt.Errorf("core: flushing observations: %w", err)
		}
	}
	timer.stop("metadata")

	timer.start("multilayer")
	res.Layers = analyzer.Finalize()
	timer.stop("multilayer")
	res.FramesAnalyzed = numFrames

	// Optional video-composition analysis over the primary camera.
	if cfg.ParseVideo {
		timer.start("video-parsing")
		renderer := video.NewRenderer(p.sim, p.rig.Cameras[0], cfg.Render)
		src, err := video.NewSourceRange(renderer, 0, numFrames)
		if err == nil {
			res.Parse, err = parsing.NewAnalyzer(parsing.Options{}).Analyze(src)
		}
		timer.stop("video-parsing")
		if err != nil {
			return nil, fmt.Errorf("core: parsing video: %w", err)
		}
	}

	timer.start("metadata")
	if err := p.writeDerived(repo, res); err != nil {
		return nil, err
	}
	if err := repo.Flush(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	timer.stop("metadata")

	timer.start("summarize")
	res.Summary, err = summarize.Summarize(res.Layers, res.Parse, cfg.Summarize)
	timer.stop("summarize")
	if err != nil {
		return nil, fmt.Errorf("core: summarizing: %w", err)
	}

	res.Timings = timer.report()
	finished = true
	return res, nil
}

// writeContext stores the time-invariant layer.
func (p *Pipeline) writeContext(repo *metadata.Repository, ctx layers.Context) error {
	recs := []metadata.Record{
		{Kind: metadata.KindContext, Frame: -1, FrameEnd: -1, Person: -1, Other: -1,
			Label: "occasion", Tags: map[string]string{"value": ctx.Occasion}},
		{Kind: metadata.KindContext, Frame: -1, FrameEnd: -1, Person: -1, Other: -1,
			Label: "location", Tags: map[string]string{"value": ctx.Location}},
	}
	for _, pp := range ctx.Participants {
		recs = append(recs, metadata.Record{
			Kind: metadata.KindContext, Frame: -1, FrameEnd: -1,
			Person: pp.ID, Other: -1, Label: "participant",
			Tags: map[string]string{"name": pp.Name, "color": pp.Color},
		})
	}
	if err := repo.AppendBatch(recs); err != nil {
		return fmt.Errorf("core: writing context: %w", err)
	}
	return nil
}

// writeDerived stores events, alerts, summary counts, shots and scenes.
func (p *Pipeline) writeDerived(repo *metadata.Repository, res *Result) error {
	var recs []metadata.Record
	for _, e := range res.Layers.Events {
		recs = append(recs, metadata.Record{
			Kind: metadata.KindEvent, Frame: e.Start, FrameEnd: e.End,
			Time: e.StartTime, Person: e.A, Other: e.B,
			Label: "eye-contact", Value: float64(e.Frames()),
		})
	}
	for _, a := range res.Layers.Alerts {
		recs = append(recs, metadata.Record{
			Kind: metadata.KindEvent, Frame: a.Frame, FrameEnd: a.Frame + 1,
			Time: a.Time, Person: a.Person, Other: a.Other,
			Label: "alert-" + a.Kind.String(),
			Tags:  map[string]string{"detail": a.Detail},
		})
	}
	sum := res.Layers.Summary
	for i, from := range sum.IDs {
		for j, to := range sum.IDs {
			if sum.Counts[i][j] == 0 {
				continue
			}
			recs = append(recs, metadata.Record{
				Kind: metadata.KindEvent, Frame: 0, FrameEnd: res.FramesAnalyzed,
				Person: from, Other: to, Label: "lookat-count",
				Value: float64(sum.Counts[i][j]),
			})
		}
	}
	if res.Parse != nil {
		for _, b := range res.Parse.Boundaries {
			recs = append(recs, metadata.Record{
				Kind: metadata.KindEvent, Frame: b.Frame, FrameEnd: b.Frame + 1,
				Person: -1, Other: -1, Label: "shot-boundary", Value: b.Score,
			})
		}
		for si, s := range res.Parse.Shots {
			recs = append(recs, metadata.Record{
				Kind: metadata.KindEvent, Frame: s.Start, FrameEnd: s.End,
				Person: -1, Other: -1, Label: "shot", Value: float64(si),
				Tags: map[string]string{"keyframe": fmt.Sprint(s.KeyFrame)},
			})
		}
	}
	if err := repo.AppendBatch(recs); err != nil {
		return fmt.Errorf("core: writing derived records: %w", err)
	}
	return nil
}

// frameVision extracts per-frame evidence.
type frameVision interface {
	extract(fs scene.FrameState) ([]gaze.Observation, map[int]layers.EmotionObs, error)
}

// --- geometric vision ---

type geometricVision struct {
	est   *gaze.Estimator
	rig   *camera.Rig
	noise float64
	seed  int64
}

func newGeometricVision(cfg Config, _ *scene.Simulator, rig *camera.Rig) *geometricVision {
	noise := cfg.EmotionNoise
	if noise == 0 {
		noise = 0.05
	}
	return &geometricVision{
		est:   gaze.NewEstimator(cfg.Gaze),
		rig:   rig,
		noise: noise,
		seed:  cfg.Gaze.Seed,
	}
}

func (g *geometricVision) extract(fs scene.FrameState) ([]gaze.Observation, map[int]layers.EmotionObs, error) {
	obs := g.est.Observe(fs, g.rig)
	emotions := make(map[int]layers.EmotionObs, len(fs.Persons))
	for _, p := range fs.Persons {
		r := emoRand(g.seed, fs.Index, p.ID)
		label := p.Emotion
		conf := 0.75 + 0.2*r.f()
		if r.f() < g.noise {
			// Misclassification: a plausible confusable label.
			label = confuse(label, r)
			conf *= 0.7
		}
		emotions[p.ID] = layers.EmotionObs{Label: label, Confidence: conf}
	}
	return obs, emotions, nil
}

// geometricVision's extract is stateless, so it streams trivially: one
// lane whose prepare does all the work and whose step passes through.
// This lets the engine pipeline geometric frames across workers too.
type geoPrep struct {
	obs      []gaze.Observation
	emotions map[int]layers.EmotionObs
	err      error
}

func (g *geometricVision) streams() int { return 1 }

// newScratch: the geometric path has no per-frame buffers to reuse.
func (g *geometricVision) newScratch() any { return nil }

func (g *geometricVision) prepare(_ int, fs scene.FrameState, _ any) any {
	obs, emotions, err := g.extract(fs)
	return geoPrep{obs: obs, emotions: emotions, err: err}
}

func (g *geometricVision) step(_ int, _ scene.FrameState, prep any) (any, error) {
	gp := prep.(geoPrep)
	return gp, gp.err
}

func (g *geometricVision) finish(_ scene.FrameState, perStream []any) ([]gaze.Observation, map[int]layers.EmotionObs, error) {
	gp := perStream[0].(geoPrep)
	return gp.obs, gp.emotions, nil
}

// confuse returns a plausible misclassification of l.
func confuse(l emotion.Label, r *tinyRand) emotion.Label {
	confusables := map[emotion.Label][]emotion.Label{
		emotion.Neutral:  {emotion.Sad, emotion.Happy},
		emotion.Happy:    {emotion.Neutral, emotion.Surprise},
		emotion.Sad:      {emotion.Neutral, emotion.Angry},
		emotion.Angry:    {emotion.Disgust, emotion.Sad},
		emotion.Disgust:  {emotion.Angry, emotion.Sad},
		emotion.Fear:     {emotion.Surprise, emotion.Sad},
		emotion.Surprise: {emotion.Fear, emotion.Happy},
	}
	opts := confusables[l]
	if len(opts) == 0 {
		return l
	}
	return opts[int(r.u()%uint64(len(opts)))]
}

// tinyRand is the deterministic emotion-noise stream.
type tinyRand struct{ s uint64 }

func emoRand(seed int64, frame, person int) *tinyRand {
	return &tinyRand{s: uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(frame)*0xBF58476D1CE4E5B9 ^ uint64(person)*0x94D049BB133111EB}
}

func (t *tinyRand) u() uint64 {
	t.s += 0x9E3779B97F4A7C15
	z := t.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (t *tinyRand) f() float64 { return float64(t.u()>>11) / (1 << 53) }

// --- pixel vision ---

// pixelCam is the per-camera pixel-path state: each camera gets its own
// renderer, tracker and crop scratch (tracks don't transfer between
// viewpoints) while the detector, recognizer and classifier are shared
// and safe for concurrent use. The engine runs each camera as one
// ordered stream, so this state is only ever touched by one goroutine
// at a time.
type pixelCam struct {
	renderer *video.Renderer
	tracker  *face.Tracker
	crop     *img.Gray // reusable face-crop buffer for this stream
}

type pixelVision struct {
	cfg        Config
	rig        *camera.Rig
	cams       []pixelCam
	detector   *face.Detector
	recognizer *face.Recognizer
	classifier *emotion.Classifier
	est        *gaze.Estimator
	nameToID   map[string]int
	// seq is the sequential path's stateless-stage scratch; the
	// concurrent engine gives each worker its own via newScratch.
	seq *pixelScratch
}

// pixelScratch holds one worker's reusable per-frame detection tables:
// the plain and squared summed-area tables of the rendered frame,
// built once per (camera, frame) on detection-cadence frames and
// shared by the detector's pre-filters and the fused matching kernel
// (DESIGN.md §6).
type pixelScratch struct {
	in *img.Integral
	sq *img.IntegralSq
}

func newPixelVision(cfg Config, sim *scene.Simulator, rig *camera.Rig) (frameVision, error) {
	det, err := face.NewDetector(face.DetectorOptions{})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	clf := cfg.Classifier
	if clf == nil {
		clf, err = trainDefaultClassifier()
		if err != nil {
			return nil, err
		}
	}
	nCams := cfg.PixelCameras
	if nCams <= 0 {
		nCams = 1
	}
	if nCams > len(rig.Cameras) {
		nCams = len(rig.Cameras)
	}
	pv := &pixelVision{
		cfg:        cfg,
		rig:        rig,
		detector:   det,
		recognizer: face.NewRecognizer(),
		classifier: clf,
		est:        gaze.NewEstimator(cfg.Gaze),
		nameToID:   make(map[string]int),
		seq:        &pixelScratch{},
	}
	for c := 0; c < nCams; c++ {
		pv.cams = append(pv.cams, pixelCam{
			renderer: video.NewRenderer(sim, rig.Cameras[c], cfg.Render),
			tracker:  face.NewTracker(face.TrackerOptions{}),
		})
	}
	// Enroll every participant from the same canonical faces the
	// renderer draws (variant key matches video.drawPerson).
	for _, p := range sim.Persons() {
		variant := uint64(p.ID)*7919 + 1
		for _, l := range []emotion.Label{emotion.Neutral, emotion.Happy, emotion.Sad} {
			crop := emotion.GenerateFace(l, variant, p.FaceTone)
			if err := pv.recognizer.Enroll(p.Name, crop); err != nil {
				return nil, fmt.Errorf("core: enrolling %s: %w", p.Name, err)
			}
		}
		pv.nameToID[p.Name] = p.ID
	}
	return pv, nil
}

// trainDefaultClassifier fits a small LBP+NN model on synthetic faces.
func trainDefaultClassifier() (*emotion.Classifier, error) {
	clf, err := emotion.NewClassifier(48, 1)
	if err != nil {
		return nil, fmt.Errorf("core: building classifier: %w", err)
	}
	ds := emotion.GenerateDataset(30, 7)
	if _, err := clf.Train(ds, emotion.TrainOptions{
		Epochs: 50, Seed: 8, LearningRate: 0.01,
	}); err != nil {
		return nil, fmt.Errorf("core: training classifier: %w", err)
	}
	return clf, nil
}

// extract is the sequential path: every camera staged in order on the
// calling goroutine. It shares prepare/step/finish with the concurrent
// engine so both paths are the same code and produce identical results.
func (pv *pixelVision) extract(fs scene.FrameState) ([]gaze.Observation, map[int]layers.EmotionObs, error) {
	perCam := make([]any, len(pv.cams))
	for ci := range pv.cams {
		res, err := pv.step(ci, fs, pv.prepare(ci, fs, pv.seq))
		if err != nil {
			return nil, nil, err
		}
		perCam[ci] = res
	}
	return pv.finish(fs, perCam)
}

// streams: one ordered lane per camera.
func (pv *pixelVision) streams() int { return len(pv.cams) }

// newScratch allocates one worker's detection-table scratch.
func (pv *pixelVision) newScratch() any { return &pixelScratch{} }

// pixelPrep is the stateless stage's output for one (camera, frame).
type pixelPrep struct {
	frame *img.Gray // pooled; released by step
	dets  []face.Detection
}

// prepare renders the camera's view and runs detection on cadence —
// the two heavy stateless stages. Cameras stagger their detection
// frames so the per-frame cost stays flat. On cadence frames the
// frame's summed-area tables are built once, into the worker's
// scratch, and shared across the detector's pre-filters and the fused
// matching kernel.
func (pv *pixelVision) prepare(ci int, fs scene.FrameState, scratch any) any {
	pc := &pv.cams[ci]
	frame := pc.renderer.RenderStateInto(fs, pc.renderer.AcquireFrame())
	pp := &pixelPrep{frame: frame}
	if (fs.Index+ci)%pv.cfg.DetectEvery == 0 {
		ps := scratch.(*pixelScratch)
		ps.in, ps.sq = img.BuildIntegrals(frame, ps.in, ps.sq)
		pp.dets = pv.detector.DetectIntegrals(frame, ps.in, ps.sq)
	}
	return pp
}

// step advances the camera's tracker and classifies each live track's
// crop. Must see frames in order; the engine guarantees it.
func (pv *pixelVision) step(ci int, fs scene.FrameState, prep any) (any, error) {
	pp := prep.(*pixelPrep)
	pc := &pv.cams[ci]
	frame := pp.frame
	pc.tracker.Step(pp.dets)

	emotions := make(map[int]layers.EmotionObs)
	for _, tr := range pc.tracker.Tracks() {
		if tr.State != face.Confirmed && fs.Index > 5 {
			continue
		}
		pc.crop = frame.CropClampedInto(clampBox(tr.Box, frame), pc.crop)
		id, _, err := pv.recognizer.Identify(pc.crop)
		if err != nil {
			continue // unknown face this frame
		}
		pid, ok := pv.nameToID[id]
		if !ok {
			continue
		}
		label, conf, err := pv.classifier.Classify(pc.crop)
		if err != nil {
			continue
		}
		// Within-camera fusion: keep the most confident reading.
		if cur, exists := emotions[pid]; !exists || conf > cur.Confidence {
			emotions[pid] = layers.EmotionObs{Label: label, Confidence: conf}
		}
	}
	pc.renderer.ReleaseFrame(frame)
	return emotions, nil
}

// finish fuses per-camera emotions in camera order — replace only on
// strictly higher confidence, exactly the sequential single-map rule —
// and produces the frame's gaze observations from the calibrated
// estimator (OpenFace substitution — see package doc).
func (pv *pixelVision) finish(fs scene.FrameState, perCam []any) ([]gaze.Observation, map[int]layers.EmotionObs, error) {
	emotions := make(map[int]layers.EmotionObs)
	for _, raw := range perCam {
		for pid, e := range raw.(map[int]layers.EmotionObs) {
			if cur, exists := emotions[pid]; !exists || e.Confidence > cur.Confidence {
				emotions[pid] = e
			}
		}
	}
	return pv.est.Observe(fs, pv.rig), emotions, nil
}

// clampBox keeps a tracker box inside the frame.
func clampBox(b img.Rect, g *img.Gray) img.Rect {
	if b.X < 0 {
		b.W += b.X
		b.X = 0
	}
	if b.Y < 0 {
		b.H += b.Y
		b.Y = 0
	}
	if b.X+b.W > g.W {
		b.W = g.W - b.X
	}
	if b.Y+b.H > g.H {
		b.H = g.H - b.Y
	}
	if b.W < 1 {
		b.W = 1
	}
	if b.H < 1 {
		b.H = 1
	}
	return b
}

// --- stage timer ---

// stageTimer accumulates per-stage durations. Safe for concurrent use:
// engine workers add extraction time from many goroutines while the
// merger times the downstream stages. Under parallel extraction the
// "feature-extraction" entry is therefore aggregate CPU time across
// workers, which can exceed wall time.
type stageTimer struct {
	mu      sync.Mutex
	order   []string
	total   map[string]time.Duration
	started map[string]time.Time
}

func newStageTimer() *stageTimer {
	return &stageTimer{
		total:   make(map[string]time.Duration),
		started: make(map[string]time.Time),
	}
}

// touch registers the stage in report order. Caller holds mu.
func (t *stageTimer) touch(name string) {
	if _, ok := t.total[name]; !ok {
		t.order = append(t.order, name)
		t.total[name] = 0
	}
}

func (t *stageTimer) start(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touch(name)
	t.started[name] = time.Now()
}

func (t *stageTimer) stop(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.started[name]; ok {
		t.total[name] += time.Since(s)
		delete(t.started, name)
	}
}

// add accumulates an externally measured duration — how concurrent
// workers report time without holding a start/stop pair open.
func (t *stageTimer) add(name string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touch(name)
	t.total[name] += d
}

func (t *stageTimer) report() []StageTiming {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageTiming, 0, len(t.order))
	for _, n := range t.order {
		out = append(out, StageTiming{Name: n, Duration: t.total[n]})
	}
	return out
}
