package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/metadata"
	"repro/internal/scene"
)

// Streaming execution (DESIGN.md §10): RunStream drives the same stage
// graph as Run, but as an online process — frame states come from a
// source that may cycle the scenario into an unbounded synthetic
// stream, windowed stages fire their RunEmit operators mid-stream, and
// cancellation finalizes a partial result instead of discarding the
// run. On a finite stream with Live and Bounded off, RunStream is
// byte-identical to Run (pinned by TestRunStreamMatchesRun).

// StreamOptions configures one streaming execution.
type StreamOptions struct {
	// Ctx cancels the stream; the run winds down at the next frame
	// boundary and finalizes what it consumed (Result.Interrupted).
	// nil streams to completion.
	Ctx context.Context
	// Frames is the total number of frames to ingest (0 = one pass over
	// the scenario, i.e. exactly what Run analyses).
	Frames int
	// Cycle allows Frames beyond the scenario's length by replaying the
	// script with continuing frame indexes and timestamps — the
	// unbounded-stream source. Without it, exceeding the scenario is an
	// error.
	Cycle bool
	// Live makes windowed stages emit live- records (live-phase,
	// live-summary, early attention spans …) at their Emit cadences, so
	// tail-cursor followers see derived output while the stream runs.
	Live bool
	// Bounded holds memory steady on unbounded streams: at Emit ticks
	// windowed stages drain closed events/spans and trim per-frame
	// series to their windows. The final Result is then partial —
	// exact aggregates, truncated series.
	Bounded bool
	// DiscardRecords drops queued raw per-frame records instead of
	// appending them (monitoring-only streams where only live derived
	// output matters). Context and end-of-run derived records still
	// write.
	DiscardRecords bool
	// FlushEvery forces the raw-record batch out every N frames so
	// followers see observations with bounded latency (0 = flush only
	// at the usual batch size).
	FlushEvery int
	// Repo, when non-nil, is a caller-owned open repository the stream
	// ingests into; the caller can Tail it concurrently (in-process
	// follow-while-ingesting) and keeps ownership of Close. nil opens
	// a repository from the pipeline Config as usual.
	Repo *metadata.Repository
	// Monitor, when non-nil, observes the stream after every completed
	// frame (the bounded-memory gate's probe; also a progress hook).
	Monitor func(frame int)
}

// PhaseSpan is one contiguous run of a decoded dining phase.
type PhaseSpan struct {
	// Phase is the activity name ("arriving", "ordering", "eating",
	// "talking", "paying").
	Phase string
	// Start and End delimit the span's frames (End exclusive).
	Start, End int
}

// RunStream executes the pipeline as an online stream. See
// StreamOptions; with the zero options it is Run, byte for byte.
func (p *Pipeline) RunStream(opts StreamOptions) (*Result, error) {
	if opts.Frames < 0 {
		return nil, fmt.Errorf("core: negative stream length %d: %w", opts.Frames, ErrBadConfig)
	}
	if opts.FlushEvery < 0 {
		return nil, fmt.Errorf("core: negative flush cadence %d: %w", opts.FlushEvery, ErrBadConfig)
	}
	base := p.sim.NumFrames()
	if p.cfg.MaxFrames > 0 && p.cfg.MaxFrames < base {
		base = p.cfg.MaxFrames
	}
	frames := opts.Frames
	if frames == 0 {
		frames = base
	}
	if frames > base && !opts.Cycle {
		return nil, fmt.Errorf("core: stream of %d frames exceeds the %d-frame scenario (set Cycle for an unbounded synthetic stream): %w",
			frames, base, ErrBadConfig)
	}
	graph, b, err := p.buildRunGraphFrames(false, frames)
	if err != nil {
		return nil, err
	}
	sr := &streamRun{
		ctx:        opts.Ctx,
		live:       opts.Live,
		bounded:    opts.Bounded,
		discard:    opts.DiscardRecords,
		flushEvery: opts.FlushEvery,
		repo:       opts.Repo,
		monitor:    opts.Monitor,
	}
	if frames > base {
		sr.frameAt = cycleFrames(p.sim, base)
	}
	return p.runGraphStream(graph, b, nil, sr)
}

// cycleFrames wraps the simulator into an unbounded source: past the
// scenario's end the script replays with the frame index continuing and
// the timestamp extended along the scenario's own clock, so downstream
// consumers see one coherent stream, not restarts.
func cycleFrames(sim *scene.Simulator, period int) func(int) scene.FrameState {
	fps := sim.Scenario().FPS
	return func(i int) scene.FrameState {
		if i < period {
			return sim.FrameState(i)
		}
		fs := sim.FrameState(i % period)
		fs.Index = i
		fs.Time = time.Duration(float64(i) / fps * float64(time.Second))
		return fs
	}
}
