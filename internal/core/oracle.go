package core

// This file is the frozen monolithic pipeline — the exact detect →
// recognize → emotion → gaze chain and derived pass that core.Run
// hardwired before the stage-graph refactor (DESIGN.md §7). It is
// retained verbatim as the equivalence oracle, the same pattern as
// face.detectOracle and metadata.NaiveQueryExpr: the production
// stage-graph pipeline must produce byte-identical metadata records,
// layers and summaries to runOracle for both vision modes. It is
// deliberately self-contained (its own vision structs, its own write
// helpers, its own copies of the small algorithmic utilities) so that
// no production refactor can silently change both sides at once. Do
// not optimise or extend it; fix it only if it is provably wrong, and
// say so in DESIGN.md §7.

import (
	"fmt"
	"sort"

	"repro/internal/camera"
	"repro/internal/emotion"
	"repro/internal/face"
	"repro/internal/gaze"
	"repro/internal/img"
	"repro/internal/layers"
	"repro/internal/metadata"
	"repro/internal/parsing"
	"repro/internal/scene"
	"repro/internal/summarize"
	"repro/internal/video"
)

// oracleVision is the monolith's per-frame extraction contract.
type oracleVision interface {
	extract(fs scene.FrameState) ([]gaze.Observation, map[int]layers.EmotionObs, error)
}

// runOracle executes the frozen monolithic pipeline sequentially
// (the pre-refactor Workers=1 path) and returns its result. Tests
// compare production runs of any worker count against it.
func (p *Pipeline) runOracle() (*Result, error) {
	cfg := p.cfg
	ctx := p.Context()

	numFrames := p.sim.NumFrames()
	if cfg.MaxFrames > 0 && cfg.MaxFrames < numFrames {
		numFrames = cfg.MaxFrames
	}

	var repo *metadata.Repository
	var err error
	if cfg.RepoDir != "" {
		repo, err = metadata.Open(cfg.RepoDir, cfg.RepoOptions...)
		if err != nil {
			return nil, fmt.Errorf("core: opening repository: %w", err)
		}
	} else {
		repo = metadata.NewMem()
	}
	finished := false
	defer func() {
		if !finished {
			repo.Close()
		}
	}()

	res := &Result{Context: ctx, Repo: repo}
	timer := newStageTimer()

	if err := oracleWriteContext(repo, ctx); err != nil {
		return nil, err
	}

	analyzer, err := layers.NewAnalyzer(ctx, cfg.Layers)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	var vision oracleVision
	switch cfg.Mode {
	case GeometricVision:
		vision = newOracleGeometricVision(cfg, p.rig)
	case PixelVision:
		vision, err = newOraclePixelVision(cfg, p.sim, p.rig)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown vision mode %d: %w", cfg.Mode, ErrBadConfig)
	}

	ids := make([]int, 0, len(ctx.Participants))
	for _, pp := range ctx.Participants {
		ids = append(ids, pp.ID)
	}
	det := gaze.NewDetector()

	const metadataBatch = 256
	pending := make([]metadata.Record, 0, metadataBatch)
	pids := make([]int, 0, len(ids))

	for i := 0; i < numFrames; i++ {
		fs := p.sim.FrameState(i)
		timer.start("feature-extraction")
		obs, emotions, err := vision.extract(fs)
		timer.stop("feature-extraction")
		if err != nil {
			return nil, fmt.Errorf("core: frame %d: %w", i, err)
		}

		timer.start("gaze-analysis")
		lookAt, err := det.LookAt(obs, p.rig, ids)
		timer.stop("gaze-analysis")
		if err != nil {
			return nil, fmt.Errorf("core: frame %d: %w", i, err)
		}

		timer.start("multilayer")
		err = analyzer.Push(layers.FrameInput{
			Index: i, Time: fs.Time, LookAt: lookAt, Emotions: emotions,
		})
		timer.stop("multilayer")
		if err != nil {
			return nil, fmt.Errorf("core: frame %d: %w", i, err)
		}

		timer.start("metadata")
		pids = pids[:0]
		for id := range emotions {
			pids = append(pids, id)
		}
		sort.Ints(pids)
		for _, id := range pids {
			e := emotions[id]
			pending = append(pending, metadata.Record{
				Kind: metadata.KindObservation, Frame: i, FrameEnd: i + 1,
				Time: fs.Time, Person: id, Other: -1,
				Label: e.Label.String(), Value: e.Confidence,
			})
		}
		var aerr error
		if len(pending) >= metadataBatch {
			aerr = repo.AppendBatch(pending)
			pending = pending[:0]
		}
		timer.stop("metadata")
		if aerr != nil {
			return nil, fmt.Errorf("core: flushing observations: %w", aerr)
		}
	}

	timer.start("metadata")
	if len(pending) > 0 {
		if err := repo.AppendBatch(pending); err != nil {
			return nil, fmt.Errorf("core: flushing observations: %w", err)
		}
	}
	timer.stop("metadata")

	timer.start("multilayer")
	res.Layers = analyzer.Finalize()
	timer.stop("multilayer")
	res.FramesAnalyzed = numFrames

	if cfg.ParseVideo {
		timer.start("video-parsing")
		renderer := video.NewRenderer(p.sim, p.rig.Cameras[0], cfg.Render)
		src, err := video.NewSourceRange(renderer, 0, numFrames)
		if err == nil {
			res.Parse, err = parsing.NewAnalyzer(parsing.Options{}).Analyze(src)
		}
		timer.stop("video-parsing")
		if err != nil {
			return nil, fmt.Errorf("core: parsing video: %w", err)
		}
	}

	timer.start("metadata")
	if err := oracleWriteDerived(repo, res); err != nil {
		return nil, err
	}
	if err := repo.Flush(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	timer.stop("metadata")

	timer.start("summarize")
	res.Summary, err = summarize.Summarize(res.Layers, res.Parse, cfg.Summarize)
	timer.stop("summarize")
	if err != nil {
		return nil, fmt.Errorf("core: summarizing: %w", err)
	}

	res.Timings = timer.report()
	finished = true
	return res, nil
}

// oracleWriteContext stores the time-invariant layer.
func oracleWriteContext(repo *metadata.Repository, ctx layers.Context) error {
	recs := []metadata.Record{
		{Kind: metadata.KindContext, Frame: -1, FrameEnd: -1, Person: -1, Other: -1,
			Label: "occasion", Tags: map[string]string{"value": ctx.Occasion}},
		{Kind: metadata.KindContext, Frame: -1, FrameEnd: -1, Person: -1, Other: -1,
			Label: "location", Tags: map[string]string{"value": ctx.Location}},
	}
	for _, pp := range ctx.Participants {
		recs = append(recs, metadata.Record{
			Kind: metadata.KindContext, Frame: -1, FrameEnd: -1,
			Person: pp.ID, Other: -1, Label: "participant",
			Tags: map[string]string{"name": pp.Name, "color": pp.Color},
		})
	}
	if err := repo.AppendBatch(recs); err != nil {
		return fmt.Errorf("core: writing context: %w", err)
	}
	return nil
}

// oracleWriteDerived stores events, alerts, summary counts, shots and
// scenes.
func oracleWriteDerived(repo *metadata.Repository, res *Result) error {
	var recs []metadata.Record
	for _, e := range res.Layers.Events {
		recs = append(recs, metadata.Record{
			Kind: metadata.KindEvent, Frame: e.Start, FrameEnd: e.End,
			Time: e.StartTime, Person: e.A, Other: e.B,
			Label: "eye-contact", Value: float64(e.Frames()),
		})
	}
	for _, a := range res.Layers.Alerts {
		recs = append(recs, metadata.Record{
			Kind: metadata.KindEvent, Frame: a.Frame, FrameEnd: a.Frame + 1,
			Time: a.Time, Person: a.Person, Other: a.Other,
			Label: "alert-" + a.Kind.String(),
			Tags:  map[string]string{"detail": a.Detail},
		})
	}
	sum := res.Layers.Summary
	for i, from := range sum.IDs {
		for j, to := range sum.IDs {
			if sum.Counts[i][j] == 0 {
				continue
			}
			recs = append(recs, metadata.Record{
				Kind: metadata.KindEvent, Frame: 0, FrameEnd: res.FramesAnalyzed,
				Person: from, Other: to, Label: "lookat-count",
				Value: float64(sum.Counts[i][j]),
			})
		}
	}
	if res.Parse != nil {
		for _, b := range res.Parse.Boundaries {
			recs = append(recs, metadata.Record{
				Kind: metadata.KindEvent, Frame: b.Frame, FrameEnd: b.Frame + 1,
				Person: -1, Other: -1, Label: "shot-boundary", Value: b.Score,
			})
		}
		for si, s := range res.Parse.Shots {
			recs = append(recs, metadata.Record{
				Kind: metadata.KindEvent, Frame: s.Start, FrameEnd: s.End,
				Person: -1, Other: -1, Label: "shot", Value: float64(si),
				Tags: map[string]string{"keyframe": fmt.Sprint(s.KeyFrame)},
			})
		}
	}
	if err := repo.AppendBatch(recs); err != nil {
		return fmt.Errorf("core: writing derived records: %w", err)
	}
	return nil
}

// --- frozen geometric vision ---

type oracleGeometricVision struct {
	est   *gaze.Estimator
	rig   *camera.Rig
	noise float64
	seed  int64
}

func newOracleGeometricVision(cfg Config, rig *camera.Rig) *oracleGeometricVision {
	noise := cfg.EmotionNoise
	if noise == 0 {
		noise = 0.05
	}
	return &oracleGeometricVision{
		est:   gaze.NewEstimator(cfg.Gaze),
		rig:   rig,
		noise: noise,
		seed:  cfg.Gaze.Seed,
	}
}

func (g *oracleGeometricVision) extract(fs scene.FrameState) ([]gaze.Observation, map[int]layers.EmotionObs, error) {
	obs := g.est.Observe(fs, g.rig)
	emotions := make(map[int]layers.EmotionObs, len(fs.Persons))
	for _, p := range fs.Persons {
		r := oracleEmoRand(g.seed, fs.Index, p.ID)
		label := p.Emotion
		conf := 0.75 + 0.2*r.f()
		if r.f() < g.noise {
			label = oracleConfuse(label, r)
			conf *= 0.7
		}
		emotions[p.ID] = layers.EmotionObs{Label: label, Confidence: conf}
	}
	return obs, emotions, nil
}

// oracleConfuse returns a plausible misclassification of l.
func oracleConfuse(l emotion.Label, r *oracleRand) emotion.Label {
	confusables := map[emotion.Label][]emotion.Label{
		emotion.Neutral:  {emotion.Sad, emotion.Happy},
		emotion.Happy:    {emotion.Neutral, emotion.Surprise},
		emotion.Sad:      {emotion.Neutral, emotion.Angry},
		emotion.Angry:    {emotion.Disgust, emotion.Sad},
		emotion.Disgust:  {emotion.Angry, emotion.Sad},
		emotion.Fear:     {emotion.Surprise, emotion.Sad},
		emotion.Surprise: {emotion.Fear, emotion.Happy},
	}
	opts := confusables[l]
	if len(opts) == 0 {
		return l
	}
	return opts[int(r.u()%uint64(len(opts)))]
}

// oracleRand is the deterministic emotion-noise stream.
type oracleRand struct{ s uint64 }

func oracleEmoRand(seed int64, frame, person int) *oracleRand {
	return &oracleRand{s: uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(frame)*0xBF58476D1CE4E5B9 ^ uint64(person)*0x94D049BB133111EB}
}

func (t *oracleRand) u() uint64 {
	t.s += 0x9E3779B97F4A7C15
	z := t.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (t *oracleRand) f() float64 { return float64(t.u()>>11) / (1 << 53) }

// --- frozen pixel vision ---

type oraclePixelCam struct {
	renderer *video.Renderer
	tracker  *face.Tracker
	crop     *img.Gray
}

type oraclePixelVision struct {
	cfg        Config
	rig        *camera.Rig
	cams       []oraclePixelCam
	detector   *face.Detector
	recognizer *face.Recognizer
	classifier *emotion.Classifier
	est        *gaze.Estimator
	nameToID   map[string]int
	scratch    oracleScratch
}

type oracleScratch struct {
	in *img.Integral
	sq *img.IntegralSq
}

func newOraclePixelVision(cfg Config, sim *scene.Simulator, rig *camera.Rig) (*oraclePixelVision, error) {
	det, err := face.NewDetector(face.DetectorOptions{})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	clf := cfg.Classifier
	if clf == nil {
		clf, err = trainDefaultClassifier()
		if err != nil {
			return nil, err
		}
	}
	nCams := cfg.PixelCameras
	if nCams <= 0 {
		nCams = 1
	}
	if nCams > len(rig.Cameras) {
		nCams = len(rig.Cameras)
	}
	pv := &oraclePixelVision{
		cfg:        cfg,
		rig:        rig,
		detector:   det,
		recognizer: face.NewRecognizer(),
		classifier: clf,
		est:        gaze.NewEstimator(cfg.Gaze),
		nameToID:   make(map[string]int),
	}
	for c := 0; c < nCams; c++ {
		pv.cams = append(pv.cams, oraclePixelCam{
			renderer: video.NewRenderer(sim, rig.Cameras[c], cfg.Render),
			tracker:  face.NewTracker(face.TrackerOptions{}),
		})
	}
	for _, p := range sim.Persons() {
		variant := uint64(p.ID)*7919 + 1
		for _, l := range []emotion.Label{emotion.Neutral, emotion.Happy, emotion.Sad} {
			crop := emotion.GenerateFace(l, variant, p.FaceTone)
			if err := pv.recognizer.Enroll(p.Name, crop); err != nil {
				return nil, fmt.Errorf("core: enrolling %s: %w", p.Name, err)
			}
		}
		pv.nameToID[p.Name] = p.ID
	}
	return pv, nil
}

func (pv *oraclePixelVision) extract(fs scene.FrameState) ([]gaze.Observation, map[int]layers.EmotionObs, error) {
	emotions := make(map[int]layers.EmotionObs)
	for ci := range pv.cams {
		pc := &pv.cams[ci]
		frame := pc.renderer.RenderStateInto(fs, pc.renderer.AcquireFrame())
		var dets []face.Detection
		if (fs.Index+ci)%pv.cfg.DetectEvery == 0 {
			pv.scratch.in, pv.scratch.sq = img.BuildIntegrals(frame, pv.scratch.in, pv.scratch.sq)
			dets = pv.detector.DetectIntegrals(frame, pv.scratch.in, pv.scratch.sq)
		}
		pc.tracker.Step(dets)
		for _, tr := range pc.tracker.Tracks() {
			if tr.State != face.Confirmed && fs.Index > 5 {
				continue
			}
			pc.crop = frame.CropClampedInto(oracleClampBox(tr.Box, frame), pc.crop)
			id, _, err := pv.recognizer.Identify(pc.crop)
			if err != nil {
				continue
			}
			pid, ok := pv.nameToID[id]
			if !ok {
				continue
			}
			label, conf, err := pv.classifier.Classify(pc.crop)
			if err != nil {
				continue
			}
			if cur, exists := emotions[pid]; !exists || conf > cur.Confidence {
				emotions[pid] = layers.EmotionObs{Label: label, Confidence: conf}
			}
		}
		pc.renderer.ReleaseFrame(frame)
	}
	return pv.est.Observe(fs, pv.rig), emotions, nil
}

// oracleClampBox keeps a tracker box inside the frame.
func oracleClampBox(b img.Rect, g *img.Gray) img.Rect {
	if b.X < 0 {
		b.W += b.X
		b.X = 0
	}
	if b.Y < 0 {
		b.H += b.Y
		b.Y = 0
	}
	if b.X+b.W > g.W {
		b.W = g.W - b.X
	}
	if b.Y+b.H > g.H {
		b.H = g.H - b.Y
	}
	if b.W < 1 {
		b.W = 1
	}
	if b.H < 1 {
		b.H = 1
	}
	return b
}
