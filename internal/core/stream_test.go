package core

// Streaming suite (DESIGN.md §10): RunStream on a finite stream is
// byte-identical to Run — including the online stages — at every worker
// count; cancellation finalizes a partial result; unbounded bounded
// streams hold memory flat; and a tail-cursor follower subscribed while
// the stream ingests sees every record exactly once, in order.
// check.sh runs the identity and follow tests under the race detector.

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/gaze"
	"repro/internal/metadata"
	"repro/internal/scene"
)

// onlineStages enables every windowed built-in on top of the default
// graph — the stages whose rolling state the streaming refactor added.
var onlineStages = []string{StageAttention, StageDiningPhase, StageLiveSummary}

// captureStreamResult runs RunStream and captures records + result.
func captureStreamResult(t *testing.T, cfg Config, opts StreamOptions) (runResult, *Result) {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunStream(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	var recs []metadata.Record
	res.Repo.Scan(func(r metadata.Record) bool {
		recs = append(recs, r)
		return true
	})
	return runResult{layers: res.Layers, summary: res.Summary, records: recs}, res
}

// TestRunStreamMatchesRun pins the streaming refactor's core guarantee:
// a finite stream with the zero options — including every online
// windowed stage — produces byte-identical records, layers, summary,
// attention spans and decoded phases to Run, sequentially and on the
// worker pool.
func TestRunStreamMatchesRun(t *testing.T) {
	cfg := Config{
		Scenario: scene.PrototypeScenario(),
		Mode:     GeometricVision,
		Gaze:     gaze.EstimatorOptions{Seed: 11},
		Stages:   onlineStages,
	}
	for _, workers := range []int{1, 8} {
		wcfg := cfg
		wcfg.Workers = workers

		p, err := New(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		var wantRecs []metadata.Record
		want.Repo.Scan(func(r metadata.Record) bool {
			wantRecs = append(wantRecs, r)
			return true
		})
		want.Repo.Close()
		if len(wantRecs) == 0 {
			t.Fatal("Run produced no records")
		}

		got, res := captureStreamResult(t, wcfg, StreamOptions{})
		if !reflect.DeepEqual(wantRecs, got.records) {
			t.Errorf("workers=%d: stream records differ from Run (%d vs %d)",
				workers, len(wantRecs), len(got.records))
		}
		if !reflect.DeepEqual(want.Layers, got.layers) {
			t.Errorf("workers=%d: stream layers differ from Run", workers)
		}
		if !reflect.DeepEqual(want.Summary, got.summary) {
			t.Errorf("workers=%d: stream summary differs from Run", workers)
		}
		if !reflect.DeepEqual(want.Attention, res.Attention) {
			t.Errorf("workers=%d: stream attention differs from Run", workers)
		}
		if len(want.Phases) == 0 || !reflect.DeepEqual(want.Phases, res.Phases) {
			t.Errorf("workers=%d: stream phases differ from Run (%v vs %v)",
				workers, want.Phases, res.Phases)
		}
		if res.Interrupted {
			t.Errorf("workers=%d: finite stream reported Interrupted", workers)
		}
	}
}

// TestRunStreamOptionsValidated rejects nonsense streams.
func TestRunStreamOptionsValidated(t *testing.T) {
	p, err := New(Config{Scenario: scene.PrototypeScenario()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunStream(StreamOptions{Frames: -1}); err == nil {
		t.Error("negative Frames accepted")
	}
	if _, err := p.RunStream(StreamOptions{FlushEvery: -1}); err == nil {
		t.Error("negative FlushEvery accepted")
	}
	if _, err := p.RunStream(StreamOptions{Frames: 100000}); err == nil {
		t.Error("stream beyond the scenario accepted without Cycle")
	}
}

// TestRunStreamCancelGraceful cancels mid-stream and requires a
// finalized partial result: Interrupted set, FramesAnalyzed equal to
// what was consumed, derived layers present, no error.
func TestRunStreamCancelGraceful(t *testing.T) {
	for _, workers := range []int{1, 8} {
		cfg := Config{
			Scenario: scene.PrototypeScenario(),
			Mode:     GeometricVision,
			Gaze:     gaze.EstimatorOptions{Seed: 3},
			Stages:   onlineStages,
			Workers:  workers,
		}
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		res, err := p.RunStream(StreamOptions{
			Ctx: ctx,
			Monitor: func(frame int) {
				if frame == 99 {
					cancel()
				}
			},
		})
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: cancelled stream errored: %v", workers, err)
		}
		if !res.Interrupted {
			t.Fatalf("workers=%d: Interrupted not set", workers)
		}
		if res.FramesAnalyzed < 100 || res.FramesAnalyzed >= 610 {
			t.Errorf("workers=%d: FramesAnalyzed = %d, want [100, 610)", workers, res.FramesAnalyzed)
		}
		if res.Layers == nil || res.Layers.Frames != res.FramesAnalyzed {
			t.Errorf("workers=%d: partial layers not finalized over consumed frames", workers)
		}
		// The consumed prefix's records were flushed and stay queryable.
		n := 0
		res.Repo.Scan(func(metadata.Record) bool { n++; return true })
		if n == 0 {
			t.Errorf("workers=%d: interrupted stream left no records", workers)
		}
		res.Repo.Close()
	}
}

// TestStreamBoundedMemory is the unbounded-stream gate: cycling the
// scenario to ~24k frames with Bounded set, heap in steady state after
// the early frames must not grow with stream length.
func TestStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("long stream")
	}
	const frames = 24000
	cfg := Config{
		Scenario: scene.PrototypeScenario(),
		Mode:     GeometricVision,
		Gaze:     gaze.EstimatorOptions{Seed: 9},
		Stages:   onlineStages,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heapAt := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	var early, late uint64
	res, err := p.RunStream(StreamOptions{
		Frames: frames, Cycle: true,
		Bounded: true, DiscardRecords: true,
		Monitor: func(frame int) {
			switch frame {
			case 8000 - 1:
				early = heapAt()
			case frames - 100:
				late = heapAt()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	if res.FramesAnalyzed != frames {
		t.Fatalf("FramesAnalyzed = %d, want %d", res.FramesAnalyzed, frames)
	}
	if early == 0 || late == 0 {
		t.Fatal("memory probes did not fire")
	}
	const slack = 8 << 20
	if late > early+slack {
		t.Errorf("heap grew %d bytes between frame 8k and 24k (early %d, late %d) — stream is not bounded",
			late-early, early, late)
	}
	// The exact aggregates survive the series trimming.
	if res.Layers.MeanOH() <= 0 {
		t.Error("trimmed stream lost its OH aggregate")
	}
}

// TestStreamFollowExactlyOnceDuringIngest subscribes a tail cursor
// before the stream starts and requires the follower's view — history
// plus CDC feed, consumed while ingest and flushes race it — to be the
// repository's full record sequence, exactly once, in append order.
func TestStreamFollowExactlyOnceDuringIngest(t *testing.T) {
	cfg := Config{
		Scenario: scene.PrototypeScenario(),
		Mode:     GeometricVision,
		Gaze:     gaze.EstimatorOptions{Seed: 17},
		Stages:   onlineStages,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	repo := metadata.NewMem()
	defer repo.Close()

	// frame >= -1 also matches the context records (Frame −1), so the
	// subscription sees essentially the whole append stream.
	expr, follow, err := metadata.ParseFollow("frame >= -1 FOLLOW")
	if err != nil || !follow {
		t.Fatalf("ParseFollow: %v (follow=%v)", err, follow)
	}
	cur, err := repo.Tail(expr, metadata.TailOpts{Buffer: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	recCh := make(chan metadata.Record, 1<<15)
	go func() {
		defer close(recCh)
		for {
			rec, err := cur.Next(ctx)
			if err != nil {
				return
			}
			recCh <- rec
		}
	}()

	res, err := p.RunStream(StreamOptions{
		Repo: repo, Live: true, FlushEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The cursor's contract covers the matching subset, so compare
	// against the repository filtered by the same predicate.
	var want []metadata.Record
	repo.Scan(func(r metadata.Record) bool {
		if ok, err := expr.Eval(r); err == nil && ok {
			want = append(want, r)
		}
		return true
	})
	if len(want) == 0 {
		t.Fatal("stream appended no records")
	}
	// Live emission happened: some derived records landed mid-stream.
	liveSeen := 0
	for _, r := range want {
		if r.Label == "live-phase" || r.Label == "live-summary" {
			liveSeen++
		}
	}
	if liveSeen == 0 {
		t.Error("live stream emitted no live- records")
	}

	got := make([]metadata.Record, 0, len(want))
	for len(got) < len(want) {
		select {
		case rec, ok := <-recCh:
			if !ok {
				t.Fatalf("follower terminated early: %v (after %d of %d records)",
					cur.Err(), len(got), len(want))
			}
			got = append(got, rec)
		case <-ctx.Done():
			t.Fatalf("timed out at %d of %d records", len(got), len(want))
		}
	}
	cancel()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("follower view diverges from the repository (%d records)", len(want))
	}
	// No duplicates follow: the feed must now be silent.
	select {
	case rec, ok := <-recCh:
		if ok {
			t.Fatalf("follower delivered an extra record: %v", rec)
		}
	case <-time.After(50 * time.Millisecond):
	}
	_ = res
}
