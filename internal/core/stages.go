package core

// Built-in stages (DESIGN.md §7): the geometric and pixel visions,
// the frame-serial analysis chain and the end-of-run stages, each
// re-expressed as a registered Stage over the shared artifact stores.
// graphVision at the bottom schedules a resolved graph onto the
// concurrent engine (engine.go).

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/emotion"
	"repro/internal/face"
	"repro/internal/gaze"
	"repro/internal/img"
	"repro/internal/layers"
	"repro/internal/metadata"
	"repro/internal/parsing"
	"repro/internal/scene"
	"repro/internal/summarize"
	"repro/internal/video"
)

// Built-in stage names.
const (
	StageRender       = "render"
	StageDetect       = "detect"
	StageTrack        = "track"
	StageClassify     = "classify"
	StageGeoGaze      = "geo-gaze"
	StageGeoEmotion   = "geo-emotion"
	StageCollectGaze  = "collect-gaze"
	StagePxGaze       = "px-gaze"
	StageFuseEmotions = "fuse-emotions"
	StageGazeAnalysis = "gaze-analysis"
	StageMultilayer   = "multilayer"
	StageObservations = "observations"
	StageAttention    = "attention-span"
	StageVideoParsing = "video-parsing"
	StageDerived      = "derived-records"
	StageManifest     = "manifest"
	StageSummarize    = "summarize"
)

// registerBuiltins seeds a registry with every built-in stage.
func registerBuiltins(r *Registry) {
	builtins := []struct {
		name string
		f    StageFactory
	}{
		{StageRender, renderStage},
		{StageDetect, detectStage},
		{StageTrack, trackStage},
		{StageClassify, classifyStage},
		{StageGeoGaze, geoGazeStage},
		{StageGeoEmotion, geoEmotionStage},
		{StageCollectGaze, collectGazeStage},
		{StagePxGaze, pxGazeStage},
		{StageFuseEmotions, fuseEmotionsStage},
		{StageGazeAnalysis, gazeAnalysisStage},
		{StageMultilayer, multilayerStage},
		{StageObservations, observationsStage},
		{StageAttention, attentionStage},
		{StageDiningPhase, diningPhaseStage},
		{StageLiveSummary, liveSummaryStage},
		{StageVideoParsing, videoParsingStage},
		{StageDerived, derivedRecordsStage},
		{StageManifest, manifestStage},
		{StageSummarize, summarizeStage},
	}
	for _, b := range builtins {
		if err := r.Register(b.name, b.f); err != nil {
			// Registration of the built-in set over a fresh registry
			// cannot collide; a failure here is a programming error.
			panic(err)
		}
	}
}

// --- pixel extraction stages ---

// renderStage renders each camera's view into a pooled gray plane.
func renderStage(b *stageBuild) (*Stage, error) {
	rends := make([]*video.Renderer, b.nCams)
	for c := 0; c < b.nCams; c++ {
		rends[c] = video.NewRenderer(b.sim, b.rig.Cameras[c], b.cfg.Render)
	}
	return &Stage{
		Name:     StageRender,
		Version:  1,
		Phase:    PhasePrepare,
		Provides: []ArtifactKey{ArtGray, ArtIntegrals},
		Config:   fmt.Sprintf("render=%+v cams=%d", b.cfg.Render, b.nCams),
		RunCam: func(_ *runEnv, a *Artifacts, _ any) error {
			r := rends[a.Cam]
			a.Gray = r.RenderStateInto(a.FS, r.AcquireFrame())
			a.release = r.ReleaseFrame
			return nil
		},
	}, nil
}

// detectStage runs face detection on cadence frames, sharing the
// frame's summed-area tables through the artifact store. Cameras
// stagger their cadence so the per-frame cost stays flat.
func detectStage(b *stageBuild) (*Stage, error) {
	det, err := face.NewDetector(face.DetectorOptions{})
	if err != nil {
		return nil, err
	}
	every := b.cfg.DetectEvery
	return &Stage{
		Name:     StageDetect,
		Version:  1,
		Phase:    PhasePrepare,
		Needs:    []ArtifactKey{ArtGray, ArtIntegrals},
		Provides: []ArtifactKey{ArtDetections},
		Config:   fmt.Sprintf("every=%d", every),
		RunCam: func(_ *runEnv, a *Artifacts, _ any) error {
			if (a.FS.Index+a.Cam)%every == 0 {
				in, sq := a.Integrals()
				a.Dets = det.DetectIntegrals(a.Gray, in, sq)
			}
			return nil
		},
	}, nil
}

// trackStage advances each camera's Kalman/Hungarian tracker. Ordered:
// trackers are stateful per camera.
func trackStage(b *stageBuild) (*Stage, error) {
	trackers := make([]*face.Tracker, b.nCams)
	for c := range trackers {
		trackers[c] = face.NewTracker(face.TrackerOptions{})
	}
	return &Stage{
		Name:     StageTrack,
		Version:  1,
		Phase:    PhaseOrdered,
		Needs:    []ArtifactKey{ArtDetections},
		Provides: []ArtifactKey{ArtTracks},
		RunCam: func(_ *runEnv, a *Artifacts, _ any) error {
			trackers[a.Cam].Step(a.Dets)
			a.Tracks = trackers[a.Cam].Tracks()
			return nil
		},
	}, nil
}

// classifyStage crops each live track, recognises the face and
// classifies its emotion, fusing within the camera by confidence.
func classifyStage(b *stageBuild) (*Stage, error) {
	clf := b.cfg.Classifier
	var err error
	if clf == nil {
		clf, err = trainDefaultClassifier()
		if err != nil {
			return nil, err
		}
	}
	if b.cfg.QuantizedInference {
		// Int8 inference is opt-in and gated: it only installs if every
		// face of a held-out synthetic set classifies to the float
		// network's top-1 label with confidence inside the tolerance.
		if err := clf.EnableQuantized(emotion.GenerateDataset(6, 7), 0); err != nil {
			return nil, fmt.Errorf("enabling quantized inference: %w", err)
		}
	}
	rec := face.NewRecognizer()
	nameToID := make(map[string]int)
	for _, p := range b.sim.Persons() {
		variant := uint64(p.ID)*7919 + 1
		for _, l := range []emotion.Label{emotion.Neutral, emotion.Happy, emotion.Sad} {
			crop := emotion.GenerateFace(l, variant, p.FaceTone)
			if err := rec.Enroll(p.Name, crop); err != nil {
				return nil, fmt.Errorf("enrolling %s: %w", p.Name, err)
			}
		}
		nameToID[p.Name] = p.ID
	}
	// Per-camera batching scratch: the frame's live-track crops are
	// collected first, identified under one gallery lock, and the
	// recognised ones classified in one batched network pass. Per-face
	// results are identical to the sequential path (the batched kernels
	// are bit-identical per sample and fusion still walks tracks in
	// order); the wins are one weight-matrix walk per frame instead of
	// per face, and crop buffers that recycle instead of reallocating.
	scr := make([]classifyScratch, b.nCams)
	return &Stage{
		Name:     StageClassify,
		Version:  1,
		Phase:    PhaseOrdered,
		Needs:    []ArtifactKey{ArtGray, ArtTracks},
		Provides: []ArtifactKey{ArtCamEmotions},
		Config:   fmt.Sprintf("classifier=%016x", clf.Fingerprint()),
		RunCam: func(_ *runEnv, a *Artifacts, _ any) error {
			emotions := make(map[int]layers.EmotionObs)
			sc := &scr[a.Cam]
			sc.reset()
			for _, tr := range a.Tracks {
				if tr.State != face.Confirmed && a.FS.Index > 5 {
					continue
				}
				sc.addCrop(a.Gray, clampBox(tr.Box, a.Gray))
			}
			sc.ids, sc.sims = rec.IdentifyBatch(sc.crops, sc.ids, sc.sims)
			for i, id := range sc.ids {
				if id == "" {
					continue // unknown face this frame
				}
				pid, ok := nameToID[id]
				if !ok {
					continue
				}
				sc.known = append(sc.known, sc.crops[i])
				sc.pids = append(sc.pids, pid)
			}
			var err error
			sc.labels, sc.confs, err = clf.ClassifyBatch(sc.known, sc.labels, sc.confs)
			if err != nil {
				// A batch fails wholesale if any one face does; the
				// sequential path skipped just the offender. Degrade to
				// per-face so one degenerate crop keeps the same
				// drop-that-face semantics instead of erroring the stage.
				sc.labels, sc.confs = sc.labels[:0], sc.confs[:0]
				keep := sc.pids[:0]
				for i, f := range sc.known {
					label, conf, cerr := clf.Classify(f)
					if cerr != nil {
						continue
					}
					keep = append(keep, sc.pids[i])
					sc.labels = append(sc.labels, label)
					sc.confs = append(sc.confs, conf)
				}
				sc.pids = keep
			}
			for i, pid := range sc.pids {
				label, conf := sc.labels[i], sc.confs[i]
				// Within-camera fusion: keep the most confident reading.
				if cur, exists := emotions[pid]; !exists || conf > cur.Confidence {
					emotions[pid] = layers.EmotionObs{Label: label, Confidence: conf}
				}
			}
			a.CamEmotions = emotions
			return nil
		},
	}, nil
}

// classifyScratch is one camera's reusable batching workspace for
// classifyStage. bufs owns the crop buffers (grown on demand, reused
// across frames); the remaining slices are the per-frame batch views.
type classifyScratch struct {
	bufs   []*img.Gray
	crops  []*img.Gray
	known  []*img.Gray
	pids   []int
	ids    []string
	sims   []float64
	labels []emotion.Label
	confs  []float64
}

func (sc *classifyScratch) reset() {
	sc.crops = sc.crops[:0]
	sc.known = sc.known[:0]
	sc.pids = sc.pids[:0]
}

// addCrop crops the frame region into the next reusable buffer and
// appends it to the frame's batch.
func (sc *classifyScratch) addCrop(g *img.Gray, box img.Rect) {
	i := len(sc.crops)
	if i == len(sc.bufs) {
		sc.bufs = append(sc.bufs, nil)
	}
	sc.bufs[i] = g.CropClampedInto(box, sc.bufs[i])
	sc.crops = append(sc.crops, sc.bufs[i])
}

// pxGazeStage produces the pixel path's gaze observations from the
// calibrated estimator (the documented OpenFace substitution).
func pxGazeStage(b *stageBuild) (*Stage, error) {
	est := gaze.NewEstimator(b.cfg.Gaze)
	rig := b.rig
	return &Stage{
		Name:       StagePxGaze,
		Version:    1,
		Phase:      PhaseMerge,
		Provides:   []ArtifactKey{ArtGazeObs},
		Config:     fmt.Sprintf("gaze=%+v", b.cfg.Gaze),
		Replayable: true,
		RunFrame: func(_ *runEnv, fa *FrameArtifacts) error {
			fa.Obs = est.Observe(fa.FS, rig)
			return nil
		},
	}, nil
}

// --- geometric extraction stages ---

// geoGazeStage observes all participants through the rig on the worker
// pool (the geometric path's dominant extraction cost).
func geoGazeStage(b *stageBuild) (*Stage, error) {
	est := gaze.NewEstimator(b.cfg.Gaze)
	rig := b.rig
	return &Stage{
		Name:       StageGeoGaze,
		Version:    1,
		Phase:      PhasePrepare,
		Provides:   []ArtifactKey{ArtCamGaze},
		Config:     fmt.Sprintf("gaze=%+v", b.cfg.Gaze),
		Replayable: true,
		RunCam: func(_ *runEnv, a *Artifacts, _ any) error {
			a.CamGaze = est.Observe(a.FS, rig)
			return nil
		},
	}, nil
}

// geoEmotionStage synthesises the calibrated noisy emotion
// observations (classifier-error model).
func geoEmotionStage(b *stageBuild) (*Stage, error) {
	noise := b.cfg.EmotionNoise
	if noise == 0 {
		noise = 0.05
	}
	seed := b.cfg.Gaze.Seed
	return &Stage{
		Name:       StageGeoEmotion,
		Version:    1,
		Phase:      PhasePrepare,
		Provides:   []ArtifactKey{ArtCamEmotions},
		Config:     fmt.Sprintf("noise=%v seed=%d", noise, seed),
		Replayable: true,
		RunCam: func(_ *runEnv, a *Artifacts, _ any) error {
			emotions := make(map[int]layers.EmotionObs, len(a.FS.Persons))
			for _, p := range a.FS.Persons {
				r := emoRand(seed, a.FS.Index, p.ID)
				label := p.Emotion
				conf := 0.75 + 0.2*r.f()
				if r.f() < noise {
					// Misclassification: a plausible confusable label.
					label = confuse(label, r)
					conf *= 0.7
				}
				emotions[p.ID] = layers.EmotionObs{Label: label, Confidence: conf}
			}
			a.CamEmotions = emotions
			return nil
		},
	}, nil
}

// collectGazeStage lifts the per-lane gaze observations into the frame
// store, in lane order.
func collectGazeStage(*stageBuild) (*Stage, error) {
	return &Stage{
		Name:       StageCollectGaze,
		Version:    1,
		Phase:      PhaseMerge,
		Needs:      []ArtifactKey{ArtCamGaze},
		Provides:   []ArtifactKey{ArtGazeObs},
		Replayable: true,
		RunFrame: func(_ *runEnv, fa *FrameArtifacts) error {
			if len(fa.PerCam) == 1 {
				fa.Obs = fa.PerCam[0].CamGaze
				return nil
			}
			fa.Obs = fa.Obs[:0]
			for _, a := range fa.PerCam {
				fa.Obs = append(fa.Obs, a.CamGaze...)
			}
			return nil
		},
	}, nil
}

// fuseEmotionsStage fuses per-camera emotions in camera order —
// replace only on strictly higher confidence, exactly the monolith's
// single-map rule.
func fuseEmotionsStage(b *stageBuild) (*Stage, error) {
	return &Stage{
		Name:     StageFuseEmotions,
		Version:  1,
		Phase:    PhaseMerge,
		Needs:    []ArtifactKey{ArtCamEmotions},
		Provides: []ArtifactKey{ArtEmotions},
		// Replayable only when its upstream is: the geometric emotion
		// synthesiser recomputes from frame state, but the pixel
		// classify chain needs rendered frames — a stale fuse there
		// must fall back to a full run.
		Replayable: b.cfg.Mode == GeometricVision,
		RunFrame: func(_ *runEnv, fa *FrameArtifacts) error {
			emotions := make(map[int]layers.EmotionObs)
			for _, a := range fa.PerCam {
				for pid, e := range a.CamEmotions {
					if cur, exists := emotions[pid]; !exists || e.Confidence > cur.Confidence {
						emotions[pid] = e
					}
				}
			}
			fa.Emotions = emotions
			return nil
		},
	}, nil
}

// --- frame-serial analysis stages ---

// gazeAnalysisStage builds the frame's look-at matrix (paper §II-D.1).
func gazeAnalysisStage(b *stageBuild) (*Stage, error) {
	det := gaze.NewDetector()
	rig := b.rig
	ids := b.ids
	return &Stage{
		Name:     StageGazeAnalysis,
		Version:  1,
		Phase:    PhaseFrame,
		Needs:    []ArtifactKey{ArtGazeObs},
		Provides: []ArtifactKey{ArtLookAt},
		Config:   fmt.Sprintf("radius-scale=%v", det.RadiusScale),
		RunFrame: func(_ *runEnv, fa *FrameArtifacts) error {
			m, err := det.LookAt(fa.Obs, rig, ids)
			if err != nil {
				return err
			}
			fa.LookAt = m
			return nil
		},
	}, nil
}

// multilayerEmitEvery is the multilayer stage's rolling cadence, and
// multilayerKeepFrames how much per-frame series tail a bounded stream
// retains (a smoothing window plus slack for late inspection).
const (
	multilayerEmitEvery  = 32
	multilayerKeepFrames = 128
)

// multilayerStage pushes each frame through the multilayer analyzer
// and finalizes the derived layers at end of run. On live/bounded
// streams it is a windowed operator: every multilayerEmitEvery frames
// it drains freshly closed eye-contact events and alerts (queued as
// records when Live — the paper's live alerting functionality) and, when
// Bounded, trims the per-frame series so memory stays flat; the exact
// aggregates (MeanOH, SatisfactionScore) are carried by counters.
func multilayerStage(b *stageBuild) (*Stage, error) {
	ctx := contextOf(b.sim, b.cfg)
	analyzer, err := layers.NewAnalyzer(ctx, b.cfg.Layers)
	if err != nil {
		return nil, err
	}
	return &Stage{
		Name:    StageMultilayer,
		Version: 1,
		Phase:   PhaseFrame,
		Needs:   []ArtifactKey{ArtLookAt, ArtEmotions},
		Config:  fmt.Sprintf("layers=%+v", b.cfg.Layers),
		Emit:    multilayerEmitEvery,
		RunFrame: func(_ *runEnv, fa *FrameArtifacts) error {
			return analyzer.Push(layers.FrameInput{
				Index: fa.Index, Time: fa.FS.Time,
				LookAt: fa.LookAt, Emotions: fa.Emotions,
			})
		},
		RunEmit: func(env *runEnv, _ *FrameArtifacts) error {
			ev, al := analyzer.DrainDerived(env.bounded)
			if env.live {
				for _, e := range ev {
					env.QueueDerived(ecEventRecord(e))
				}
				for _, a := range al {
					env.QueueDerived(alertRecord(a))
				}
			}
			if env.bounded {
				analyzer.TrimSeries(multilayerKeepFrames)
			}
			return nil
		},
		RunFinal: func(env *runEnv) error {
			env.res.Layers = analyzer.Finalize()
			return nil
		},
	}, nil
}

// observationsStage emits the raw per-frame layer into the metadata
// batch queue: emotion observations in sorted person order (so the
// record log is byte-identical across runs and worker counts), plus
// look-at edges when the run keeps a manifest (Config.Incremental) —
// the persisted raw gaze layer incremental re-runs replay.
func observationsStage(b *stageBuild) (*Stage, error) {
	pids := make([]int, 0, len(b.ids))
	incremental := b.cfg.Incremental
	return &Stage{
		Name:    StageObservations,
		Version: 1,
		Phase:   PhaseFrame,
		Needs:   []ArtifactKey{ArtEmotions, ArtLookAt},
		Config:  fmt.Sprintf("incremental=%v", incremental),
		RunFrame: func(env *runEnv, fa *FrameArtifacts) error {
			pids = pids[:0]
			for id := range fa.Emotions {
				pids = append(pids, id)
			}
			sort.Ints(pids)
			for _, id := range pids {
				e := fa.Emotions[id]
				env.Queue(metadata.Record{
					Kind: metadata.KindObservation, Frame: fa.Index, FrameEnd: fa.Index + 1,
					Time: fa.FS.Time, Person: id, Other: -1,
					Label: e.Label.String(), Value: e.Confidence,
				})
			}
			if incremental {
				m := fa.LookAt
				for i := range m.IDs {
					for j := range m.IDs {
						if m.M[i][j] == 1 {
							env.Queue(metadata.Record{
								Kind: metadata.KindObservation, Frame: fa.Index, FrameEnd: fa.Index + 1,
								Time: fa.FS.Time, Person: m.IDs[i], Other: m.IDs[j],
								Label: lookatLabel, Value: 1,
							})
						}
					}
				}
			}
			return nil
		},
	}, nil
}

// --- end-of-run stages ---

// videoParsingStage runs composition analysis over the primary
// camera's rendered footage.
func videoParsingStage(b *stageBuild) (*Stage, error) {
	sim, rig, opts, numFrames := b.sim, b.rig, b.cfg.Render, b.numFrames
	return &Stage{
		Name:    StageVideoParsing,
		Version: 1,
		Phase:   PhaseFinal,
		Config:  fmt.Sprintf("render=%+v", opts),
		RunFinal: func(env *runEnv) error {
			renderer := video.NewRenderer(sim, rig.Cameras[0], opts)
			src, err := video.NewSourceRange(renderer, 0, numFrames)
			if err == nil {
				env.res.Parse, err = parsing.NewAnalyzer(parsing.Options{}).Analyze(src)
			}
			if err != nil {
				return fmt.Errorf("parsing video: %w", err)
			}
			return nil
		},
	}, nil
}

// derivedRecordsStage stores events, alerts, summary counts, shots and
// scenes — the derived metadata layer.
func derivedRecordsStage(*stageBuild) (*Stage, error) {
	return &Stage{
		Name:    StageDerived,
		Version: 1,
		Phase:   PhaseFinal,
		RunFinal: func(env *runEnv) error {
			return writeDerived(env.repo, env.res)
		},
	}, nil
}

// summarizeStage produces the event digest.
func summarizeStage(b *stageBuild) (*Stage, error) {
	opt := b.cfg.Summarize
	return &Stage{
		Name:    StageSummarize,
		Version: 1,
		Phase:   PhaseFinal,
		Config:  fmt.Sprintf("summarize=%+v", opt),
		RunFinal: func(env *runEnv) error {
			s, err := summarize.Summarize(env.res.Layers, env.res.Parse, opt)
			if err != nil {
				return fmt.Errorf("summarizing: %w", err)
			}
			env.res.Summary = s
			return nil
		},
	}, nil
}

// --- engine adapter ---

// graphVision schedules a resolved stage graph onto the concurrent
// engine: prepare stages on the worker pool, ordered stages on the
// per-camera consumers, merge stages on the merger. Frame and final
// stages are driven by Pipeline.run, not the engine.
type graphVision struct {
	g     *stageGraph
	env   *runEnv
	nCams int
	seq   *graphScratch // sequential path's worker scratch
}

// graphScratch is one worker's scratch: the shared integral tables
// plus per-prepare-stage scratch.
type graphScratch struct {
	integ    integralScratch
	perStage []any
}

func newGraphVision(g *stageGraph, env *runEnv, nCams int) *graphVision {
	v := &graphVision{g: g, env: env, nCams: nCams}
	v.seq = v.newScratch().(*graphScratch)
	return v
}

func (v *graphVision) streams() int { return v.nCams }

func (v *graphVision) newScratch() any {
	prep := v.g.byPhase[PhasePrepare]
	ws := &graphScratch{perStage: make([]any, len(prep))}
	for i, st := range prep {
		if st.NewScratch != nil {
			ws.perStage[i] = st.NewScratch()
		}
	}
	return ws
}

// prepare runs the stateless stages for one (camera, frame) with
// exclusive use of the calling worker's scratch, timing each stage
// under its own name (chained timestamps: one clock read per stage).
func (v *graphVision) prepare(stream int, fs scene.FrameState, scratch any) any {
	ws := scratch.(*graphScratch)
	a := &Artifacts{Cam: stream, FS: fs, scratch: &ws.integ}
	t := time.Now()
	for i, st := range v.g.byPhase[PhasePrepare] {
		if err := v.env.invoke(st, func() error { return st.RunCam(v.env, a, ws.perStage[i]) }); err != nil {
			a.err = fmt.Errorf("stage %s: %w", st.Name, err)
			break
		}
		now := time.Now()
		v.env.timer.add(st.Name, now.Sub(t))
		t = now
	}
	return a
}

// step runs the ordered stages for one camera in strict frame order,
// then returns the frame's gray plane to its pool.
func (v *graphVision) step(_ int, _ scene.FrameState, prep any) (any, error) {
	a := prep.(*Artifacts)
	if a.err == nil {
		t := time.Now()
		for _, st := range v.g.byPhase[PhaseOrdered] {
			if err := v.env.invoke(st, func() error { return st.RunCam(v.env, a, nil) }); err != nil {
				a.err = fmt.Errorf("stage %s: %w", st.Name, err)
				break
			}
			now := time.Now()
			v.env.timer.add(st.Name, now.Sub(t))
			t = now
		}
	}
	if a.Gray != nil && a.release != nil {
		a.release(a.Gray)
		a.Gray = nil
	}
	return a, a.err
}

// finish assembles the frame store and runs the merge stages in order,
// timing each under its own name (px-gaze's estimator pass is real
// per-frame work, not just map fusion).
func (v *graphVision) finish(fs scene.FrameState, perStream []any) (any, error) {
	fa := &FrameArtifacts{Index: fs.Index, FS: fs, PerCam: make([]*Artifacts, len(perStream))}
	for i, raw := range perStream {
		fa.PerCam[i] = raw.(*Artifacts)
	}
	t := time.Now()
	for _, st := range v.g.byPhase[PhaseMerge] {
		if err := v.env.invoke(st, func() error { return st.RunFrame(v.env, fa) }); err != nil {
			return nil, fmt.Errorf("stage %s: %w", st.Name, err)
		}
		now := time.Now()
		v.env.timer.add(st.Name, now.Sub(t))
		t = now
	}
	return fa, nil
}

// extract is the sequential path: all engine phases inline on the
// calling goroutine, sharing the same stage code as the concurrent
// engine so both paths produce identical results.
func (v *graphVision) extract(fs scene.FrameState) (any, error) {
	perCam := make([]any, v.nCams)
	for ci := 0; ci < v.nCams; ci++ {
		res, err := v.step(ci, fs, v.prepare(ci, fs, v.seq))
		if err != nil {
			return nil, err
		}
		perCam[ci] = res
	}
	return v.finish(fs, perCam)
}

// itoa keeps strconv out of stage call sites.
func itoa(v int) string { return strconv.Itoa(v) }
