package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/gaze"
	"repro/internal/metadata"
	"repro/internal/scene"
)

func baseIncrementalConfig() Config {
	return Config{
		Scenario:    scene.PrototypeScenario(),
		Mode:        GeometricVision,
		Gaze:        gaze.EstimatorOptions{Seed: 21},
		MaxFrames:   200,
		Incremental: true,
	}
}

func captureResult(t *testing.T, res *Result) runResult {
	t.Helper()
	var recs []metadata.Record
	res.Repo.Scan(func(r metadata.Record) bool {
		recs = append(recs, r)
		return true
	})
	return runResult{layers: res.Layers, summary: res.Summary, records: recs}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestIncrementalNothingStale replays every raw layer: no extraction,
// byte-identical output, and the manifest diff reports the gaze and
// emotion chains as reused.
func TestIncrementalNothingStale(t *testing.T) {
	cfg := baseIncrementalConfig()
	prev := mustRun(t, cfg)
	defer prev.Repo.Close()

	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunIncremental(prev.Repo)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()

	want := captureResult(t, prev)
	got := captureResult(t, res)
	if !reflect.DeepEqual(want.records, got.records) {
		t.Errorf("incremental records differ from the originating run (%d vs %d)",
			len(want.records), len(got.records))
	}
	if !reflect.DeepEqual(want.layers, got.layers) {
		t.Error("incremental layers differ")
	}
	if len(res.StaleStages) != 0 {
		t.Errorf("nothing changed but stale stages = %v", res.StaleStages)
	}
	reused := map[string]bool{}
	for _, n := range res.ReusedStages {
		reused[n] = true
	}
	for _, wantName := range []string{StageGeoGaze, StageGeoEmotion} {
		if !reused[wantName] {
			t.Errorf("stage %s not reported reused (reused = %v)", wantName, res.ReusedStages)
		}
	}
}

// TestIncrementalEmotionStale is the tentpole scenario: a changed
// emotion model re-emits only the emotion + downstream derived
// records, replaying the (dominant) gaze chain from the repository —
// and the result is byte-identical to a full run of the new config.
func TestIncrementalEmotionStale(t *testing.T) {
	cfg := baseIncrementalConfig()
	prev := mustRun(t, cfg)
	defer prev.Repo.Close()

	next := cfg
	next.EmotionNoise = 0.25 // "retrained" model: different error profile
	full := mustRun(t, next)
	defer full.Repo.Close()

	p, err := New(next)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunIncremental(prev.Repo)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()

	assertRunsEqual(t, captureResult(t, full), captureResult(t, res), "emotion-stale")

	stale := map[string]bool{}
	for _, n := range res.StaleStages {
		stale[n] = true
	}
	if !stale[StageGeoEmotion] {
		t.Errorf("geo-emotion not stale: %v", res.StaleStages)
	}
	reused := map[string]bool{}
	for _, n := range res.ReusedStages {
		reused[n] = true
	}
	if !reused[StageGeoGaze] {
		t.Errorf("gaze chain not reused on an emotion-only change: %v", res.ReusedStages)
	}
}

// TestIncrementalGazeStale flips the staleness: a re-tuned gaze
// estimator recomputes the gaze chain and replays emotions.
func TestIncrementalGazeStale(t *testing.T) {
	cfg := baseIncrementalConfig()
	prev := mustRun(t, cfg)
	defer prev.Repo.Close()

	next := cfg
	next.Gaze.GazeNoiseDeg = 5
	full := mustRun(t, next)
	defer full.Repo.Close()

	p, err := New(next)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunIncremental(prev.Repo)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()

	assertRunsEqual(t, captureResult(t, full), captureResult(t, res), "gaze-stale")
	reused := map[string]bool{}
	for _, n := range res.ReusedStages {
		reused[n] = true
	}
	if !reused[StageGeoEmotion] {
		t.Errorf("emotion layer not reused on a gaze-only change: %v", res.ReusedStages)
	}
}

// TestIncrementalForcedStale covers -rederive: forcing a stage stale
// re-runs its chain even with an unchanged config, and unknown names
// are rejected.
func TestIncrementalForcedStale(t *testing.T) {
	cfg := baseIncrementalConfig()
	prev := mustRun(t, cfg)
	defer prev.Repo.Close()

	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunIncremental(prev.Repo, StageGeoEmotion)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	stale := map[string]bool{}
	for _, n := range res.StaleStages {
		stale[n] = true
	}
	if !stale[StageGeoEmotion] {
		t.Errorf("forced stage not stale: %v", res.StaleStages)
	}
	assertRunsEqual(t, captureResult(t, prev), captureResult(t, res), "forced-stale")

	if _, err := p.RunIncremental(prev.Repo, "no-such-stage"); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown forced stage: err = %v, want ErrBadConfig", err)
	}
}

// TestIncrementalNoManifest rejects repositories without a manifest.
func TestIncrementalNoManifest(t *testing.T) {
	cfg := baseIncrementalConfig()
	cfg.Incremental = false
	prev := mustRun(t, cfg)
	defer prev.Repo.Close()

	p, err := New(baseIncrementalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunIncremental(prev.Repo); !errors.Is(err, ErrNoManifest) {
		t.Errorf("err = %v, want ErrNoManifest", err)
	}
}

// TestIncrementalIdentityMismatch falls back to a full run when the
// previous repository describes a different event.
func TestIncrementalIdentityMismatch(t *testing.T) {
	cfg := baseIncrementalConfig()
	prev := mustRun(t, cfg)
	defer prev.Repo.Close()

	next := cfg
	next.MaxFrames = 150 // different frame count → raw layers unusable
	full := mustRun(t, next)
	defer full.Repo.Close()

	p, err := New(next)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunIncremental(prev.Repo)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	if len(res.ReusedStages) != 0 {
		t.Errorf("identity mismatch must not reuse stages, got %v", res.ReusedStages)
	}
	assertRunsEqual(t, captureResult(t, full), captureResult(t, res), "identity-mismatch")
}

// TestIncrementalDefaultRunIsOracleClean double-checks the flag
// boundary: a run without Incremental writes no manifest or lookat
// records — the byte-identity contract with the oracle depends on it.
func TestIncrementalDefaultRunIsOracleClean(t *testing.T) {
	cfg := baseIncrementalConfig()
	cfg.Incremental = false
	res := mustRun(t, cfg)
	defer res.Repo.Close()
	for _, q := range []string{
		"label = 'run-manifest'", "label = 'stage-manifest'", "label = 'lookat'",
	} {
		recs, err := res.Repo.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 0 {
			t.Errorf("default run wrote %d %s records", len(recs), q)
		}
	}
}

// TestIncrementalPixelClassifierStaleFallsBack: a stale pixel
// extraction stage cannot re-run without video, so the run falls back
// to full extraction — and still produces a full-run-identical result.
// fuse-emotions is covered too: it is replayable in geometric mode
// only, since its pixel upstream (classify) needs rendered frames.
func TestIncrementalPixelClassifierStaleFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("pixel vision is expensive")
	}
	cfg := Config{
		Scenario:     scene.PrototypeScenario(),
		Mode:         PixelVision,
		Gaze:         gaze.EstimatorOptions{Seed: 4},
		Classifier:   engineTestClassifier(t),
		MaxFrames:    18,
		DetectEvery:  3,
		PixelCameras: 1,
		Incremental:  true,
	}
	prev := mustRun(t, cfg)
	defer prev.Repo.Close()

	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{StageClassify, StageFuseEmotions} {
		res, err := p.RunIncremental(prev.Repo, stage)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.ReusedStages) != 0 {
			t.Errorf("stale %s: pixel fallback must not reuse stages, got %v", stage, res.ReusedStages)
		}
		assertRunsEqual(t, captureResult(t, prev), captureResult(t, res), "pixel-fallback-"+stage)
		res.Repo.Close()
	}
}

// TestIncrementalSameRepoDirRejected: the output repository cannot be
// the directory prev still holds the exclusive lease on — reject with
// a descriptive error instead of a misleading cross-"process" lock
// failure.
func TestIncrementalSameRepoDirRejected(t *testing.T) {
	cfg := baseIncrementalConfig()
	cfg.RepoDir = t.TempDir()
	prev := mustRun(t, cfg)
	defer prev.Repo.Close()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunIncremental(prev.Repo); !errors.Is(err, ErrBadConfig) {
		t.Errorf("same RepoDir: err = %v, want ErrBadConfig", err)
	}
}

// TestIncrementalIdentityIgnoresUnusedPixelCameras: PixelCameras is
// meaningless in geometric mode (and 0 ≡ 1 in pixel mode): it must
// not defeat replay by perturbing the run identity.
func TestIncrementalIdentityIgnoresUnusedPixelCameras(t *testing.T) {
	cfg := baseIncrementalConfig() // PixelCameras: 0
	prev := mustRun(t, cfg)
	defer prev.Repo.Close()

	next := cfg
	next.PixelCameras = 2 // ignored by geometric extraction
	p, err := New(next)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunIncremental(prev.Repo)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	if len(res.ReusedStages) == 0 {
		t.Errorf("unused PixelCameras knob forced a full run (stale=%v)", res.StaleStages)
	}
	assertRunsEqual(t, captureResult(t, prev), captureResult(t, res), "pixelcams-ignored")
}

// TestIncrementalLatestRunWithoutManifest: when the newest run
// appended into a directory kept no manifest, the older run's
// manifest must not be paired with the newer run's raw layers —
// that's ErrNoManifest, not a silent replay of empty matrices.
func TestIncrementalLatestRunWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	cfg := baseIncrementalConfig()
	cfg.RepoDir = dir
	resA := mustRun(t, cfg)
	if err := resA.Repo.Close(); err != nil {
		t.Fatal(err)
	}
	plain := cfg
	plain.Incremental = false
	prev := mustRun(t, plain)
	defer prev.Repo.Close()

	p, err := New(baseIncrementalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunIncremental(prev.Repo); !errors.Is(err, ErrNoManifest) {
		t.Errorf("latest run has no manifest: err = %v, want ErrNoManifest", err)
	}
}

// TestIncrementalCustomReplayableStage: a registered Replayable
// prepare stage re-runs inside the replay loop with the same scratch
// contract full runs give it; a stage whose Needs reach a
// non-replayable provider pulls the run back to full extraction.
func TestIncrementalCustomReplayableStage(t *testing.T) {
	reg := NewRegistry()
	var scratchCalls, runCalls int
	if err := reg.Register("jitter", func(*stageBuild) (*Stage, error) {
		return &Stage{
			Name: "jitter", Version: 1, Phase: PhasePrepare,
			Provides:   []ArtifactKey{"jitter"},
			Replayable: true,
			NewScratch: func() any { scratchCalls++; return &struct{ n int }{} },
			RunCam: func(_ *runEnv, _ *Artifacts, sc any) error {
				sc.(*struct{ n int }).n++ // panics if the engine hands nil scratch
				runCalls++
				return nil
			},
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
	cfg := baseIncrementalConfig()
	cfg.Registry = reg
	cfg.Stages = []string{"jitter"}
	cfg.Workers = 1
	prev := mustRun(t, cfg)
	defer prev.Repo.Close()

	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runCalls = 0
	res, err := p.RunIncremental(prev.Repo, "jitter")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	if runCalls != 200 {
		t.Errorf("stale custom stage ran %d times, want one per frame (200)", runCalls)
	}
	assertRunsEqual(t, captureResult(t, prev), captureResult(t, res), "custom-replayable")
}

// TestIncrementalCustomStageNeedingPixelsFallsBack: a Replayable
// claim does not extend to a stage whose inputs come from the render
// chain — the upstream closure detects it and falls back.
func TestIncrementalCustomStageNeedingPixelsFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("pixel vision is expensive")
	}
	reg := NewRegistry()
	if err := reg.Register("gray-peek", func(*stageBuild) (*Stage, error) {
		return &Stage{
			Name: "gray-peek", Version: 1, Phase: PhasePrepare,
			Needs:      []ArtifactKey{ArtGray},
			Provides:   []ArtifactKey{"gray-peek"},
			Replayable: true, // a lie: it reads rendered pixels
			RunCam: func(_ *runEnv, a *Artifacts, _ any) error {
				if a.Gray == nil {
					return errors.New("gray plane missing")
				}
				return nil
			},
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Scenario:     scene.PrototypeScenario(),
		Mode:         PixelVision,
		Gaze:         gaze.EstimatorOptions{Seed: 4},
		Classifier:   engineTestClassifier(t),
		MaxFrames:    12,
		DetectEvery:  3,
		PixelCameras: 1,
		Incremental:  true,
		Registry:     reg,
		Stages:       []string{"gray-peek"},
	}
	prev := mustRun(t, cfg)
	defer prev.Repo.Close()

	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunIncremental(prev.Repo, "gray-peek")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	if len(res.ReusedStages) != 0 {
		t.Errorf("render-dependent stage must force a full run, reused %v", res.ReusedStages)
	}
	assertRunsEqual(t, captureResult(t, prev), captureResult(t, res), "gray-peek-fallback")
}

// TestIncrementalReusedRepoDirTakesLatestRun: an append-only
// repository directory can accumulate several runs; the replay must
// reconstruct the latest run's raw layers only, not the union — a
// phantom edge from an older gaze configuration would silently skew
// every derived record.
func TestIncrementalReusedRepoDirTakesLatestRun(t *testing.T) {
	dir := t.TempDir()
	mkCfg := func(seed int64) Config {
		return Config{
			Scenario:    scene.PrototypeScenario(),
			Mode:        GeometricVision,
			Gaze:        gaze.EstimatorOptions{Seed: seed},
			MaxFrames:   150,
			Incremental: true,
		}
	}
	// Run A (seed 1) then run B (seed 2) appended into the same dir.
	cfgA := mkCfg(1)
	cfgA.RepoDir = dir
	resA := mustRun(t, cfgA)
	if err := resA.Repo.Close(); err != nil {
		t.Fatal(err)
	}
	cfgB := mkCfg(2)
	cfgB.RepoDir = dir
	prev := mustRun(t, cfgB)
	defer prev.Repo.Close()

	// Full in-memory reference run of B's configuration.
	full := mustRun(t, mkCfg(2))
	defer full.Repo.Close()

	p, err := New(mkCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunIncremental(prev.Repo)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	if len(res.StaleStages) != 0 {
		t.Errorf("nothing stale vs the latest manifest, got %v", res.StaleStages)
	}
	assertRunsEqual(t, captureResult(t, full), captureResult(t, res), "reused-dir")
}
