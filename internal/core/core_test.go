package core

import (
	"errors"
	"testing"

	"repro/internal/camera"
	"repro/internal/emotion"
	"repro/internal/gaze"
	"repro/internal/layers"
	"repro/internal/metadata"
	"repro/internal/scene"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty scenario should fail")
	}
	if _, err := New(Config{Scenario: scene.PrototypeScenario(), EmotionNoise: 2}); !errors.Is(err, ErrBadConfig) {
		t.Error("bad emotion noise should fail")
	}
	if _, err := New(Config{Scenario: scene.PrototypeScenario(), DetectEvery: -1}); !errors.Is(err, ErrBadConfig) {
		t.Error("negative cadence should fail")
	}
	if _, err := New(Config{Scenario: scene.PrototypeScenario(), Workers: -1}); !errors.Is(err, ErrBadConfig) {
		t.Error("negative worker count should fail")
	}
	if _, err := New(Config{Scenario: scene.PrototypeScenario(), MaxFrames: -1}); !errors.Is(err, ErrBadConfig) {
		t.Error("negative max frames should fail")
	}
	if _, err := New(Config{Scenario: scene.PrototypeScenario(), PixelCameras: -2}); !errors.Is(err, ErrBadConfig) {
		t.Error("negative pixel camera count should fail")
	}
	if _, err := New(Config{Scenario: scene.PrototypeScenario(), Mode: VisionMode(9)}); !errors.Is(err, ErrBadConfig) {
		t.Error("unknown vision mode should fail at New, not mid-run")
	}
}

// TestNewValidationZeroFrames: a scenario without frames must be
// rejected up front with a descriptive error, not analysed into an
// empty result.
func TestNewValidationZeroFrames(t *testing.T) {
	sc := scene.PrototypeScenario()
	sc.NumFrames = 0
	if _, err := New(Config{Scenario: sc}); err == nil {
		t.Error("zero-frame scenario should fail")
	}
	sc.NumFrames = -5
	if _, err := New(Config{Scenario: sc}); err == nil {
		t.Error("negative-frame scenario should fail")
	}
}

// TestNewValidationNilRig: a nil rig selects the default prototype
// rig, which needs positive room dimensions — previously this
// surfaced as an opaque camera-package error; now New names the fix.
func TestNewValidationNilRig(t *testing.T) {
	sc := scene.PrototypeScenario()
	sc.RoomW = 0
	for _, mode := range []VisionMode{GeometricVision, PixelVision} {
		_, err := New(Config{Scenario: sc, Mode: mode})
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("mode %v: nil rig with zero room dims: err = %v, want ErrBadConfig", mode, err)
		}
	}
}

// TestNewValidationPixelRigIntrinsics: pixel vision renders through
// the rig's cameras, so an uncalibrated camera (no sensor dimensions)
// must be rejected at New instead of panicking deep in the renderer.
func TestNewValidationPixelRigIntrinsics(t *testing.T) {
	full, err := camera.PrototypeRig(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	bare := *full.Cameras[0]
	bare.In.W, bare.In.H = 0, 0
	rig, err := camera.NewRig(25, &bare)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Scenario: scene.PrototypeScenario(), Rig: rig, Mode: PixelVision}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("pixel mode with intrinsics-less camera: err = %v, want ErrBadConfig", err)
	}
	// Geometric vision never renders: the same rig is fine there.
	if _, err := New(Config{Scenario: scene.PrototypeScenario(), Rig: rig, Mode: GeometricVision}); err != nil {
		t.Errorf("geometric mode should accept the rig: %v", err)
	}
}

// TestGeometricPipelineEndToEnd runs the full prototype event through
// the geometric pipeline and checks the paper's headline outputs.
func TestGeometricPipelineEndToEnd(t *testing.T) {
	p, err := New(Config{
		Scenario: scene.PrototypeScenario(),
		Mode:     GeometricVision,
		Gaze:     gaze.EstimatorOptions{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()

	if res.FramesAnalyzed != 610 {
		t.Errorf("analyzed %d frames, want 610", res.FramesAnalyzed)
	}
	// Fig. 9 shape: zero diagonal, P1 column dominant.
	sum := res.Layers.Summary
	for i := range sum.IDs {
		if sum.Counts[i][i] != 0 {
			t.Error("summary diagonal must be zero")
		}
	}
	if sum.Dominant() != 0 {
		t.Errorf("dominant = P%d, want P1", sum.Dominant()+1)
	}
	// P1→P3 should be the largest single entry (truth: 357/610 frames)
	// modulo estimator noise.
	if got := sum.Counts[0][2]; got < 280 || got > 420 {
		t.Errorf("P1→P3 count = %d, want ≈ 357", got)
	}
	// Eye-contact events exist (the prototype scripts several mutual
	// episodes).
	if len(res.Layers.Events) == 0 {
		t.Error("no eye-contact events detected")
	}
	// Summary present with dominance.
	if res.Summary == nil || res.Summary.Dominant != 0 {
		t.Errorf("summary dominant = %+v", res.Summary)
	}
	// Timings cover the core stages.
	names := map[string]bool{}
	for _, st := range res.Timings {
		names[st.Name] = true
	}
	for _, want := range []string{"feature-extraction", "gaze-analysis", "multilayer", "metadata", "summarize"} {
		if !names[want] {
			t.Errorf("missing stage timing %q (have %v)", want, res.Timings)
		}
	}
}

func TestPipelineMetadataQueryable(t *testing.T) {
	p, err := New(Config{
		Scenario: scene.PrototypeScenario(),
		Mode:     GeometricVision,
		Gaze:     gaze.EstimatorOptions{Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()

	// Context records.
	got, err := res.Repo.Query("kind = context AND label = 'participant'")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("%d participant records, want 4", len(got))
	}
	// The paper's showcase query: scenes where P1 was in eye contact.
	got, err = res.Repo.Query("label = 'eye-contact' AND person = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Error("no P1 eye-contact events stored")
	}
	// Per-frame emotion observations exist and are bounded.
	got, err = res.Repo.Query("kind = observation AND frame < 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) > 40 {
		t.Errorf("%d early observations", len(got))
	}
	// lookat-count records reproduce Fig. 9 entries.
	got, err = res.Repo.Query("label = 'lookat-count' AND person = 1 AND other = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("lookat-count P1→P3 records = %d", len(got))
	}
	if v := got[0].Value; v < 280 || v > 420 {
		t.Errorf("stored P1→P3 count = %v", v)
	}
}

func TestPipelinePersistentRepo(t *testing.T) {
	dir := t.TempDir()
	p, err := New(Config{
		Scenario:  scene.PrototypeScenario(),
		Mode:      GeometricVision,
		Gaze:      gaze.EstimatorOptions{Seed: 3},
		RepoDir:   dir,
		MaxFrames: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	n := res.Repo.Len()
	if err := res.Repo.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: everything survived.
	r2, err := metadata.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != n {
		t.Errorf("recovered %d records, want %d", r2.Len(), n)
	}
}

func TestPipelineMaxFrames(t *testing.T) {
	p, err := New(Config{
		Scenario:  scene.PrototypeScenario(),
		Mode:      GeometricVision,
		MaxFrames: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	if res.FramesAnalyzed != 50 {
		t.Errorf("analyzed %d, want 50", res.FramesAnalyzed)
	}
}

// TestPixelPipelineShortRun exercises the full pixel path — render,
// detect, track, recognize, classify — on a short prototype prefix.
func TestPixelPipelineShortRun(t *testing.T) {
	if testing.Short() {
		t.Skip("pixel vision is expensive")
	}
	p, err := New(Config{
		Scenario:    scene.PrototypeScenario(),
		Mode:        PixelVision,
		Gaze:        gaze.EstimatorOptions{Seed: 4},
		MaxFrames:   40,
		DetectEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()

	// The pixel path must have produced emotion observations for at
	// least two of the four participants (some are far from the
	// primary camera).
	recs, err := res.Repo.Query("kind = observation")
	if err != nil {
		t.Fatal(err)
	}
	persons := map[int]bool{}
	for _, r := range recs {
		persons[r.Person] = true
	}
	if len(persons) < 2 {
		t.Errorf("pixel vision recognized %d participants (%v), want ≥ 2; %d obs",
			len(persons), persons, len(recs))
	}
}

// TestQuantizedInferencePipeline runs the pixel path with int8
// inference enabled: the oracle-equivalence gate must pass at build
// (EnableQuantized fails fast on disagreement) and the run must still
// produce emotion observations. Exact record equality with the float
// run is not asserted — the gate guarantees top-1 labels per face, but
// per-track fusion picks by confidence, which legitimately drifts
// within tolerance.
func TestQuantizedInferencePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("pixel vision is expensive")
	}
	p, err := New(Config{
		Scenario:           scene.PrototypeScenario(),
		Mode:               PixelVision,
		Gaze:               gaze.EstimatorOptions{Seed: 4},
		MaxFrames:          24,
		DetectEvery:        4,
		QuantizedInference: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	recs, err := res.Repo.Query("kind = observation")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Error("quantized pixel run produced no emotion observations")
	}
}

func TestPipelineWithVideoParsing(t *testing.T) {
	p, err := New(Config{
		Scenario:   scene.PrototypeScenario(),
		Mode:       GeometricVision,
		MaxFrames:  120,
		ParseVideo: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	if res.Parse == nil {
		t.Fatal("expected a parse")
	}
	// Single fixed camera: exactly one shot.
	if len(res.Parse.Shots) != 1 {
		t.Errorf("static footage parsed into %d shots", len(res.Parse.Shots))
	}
	// Shot records written.
	got, err := res.Repo.Query("label = 'shot'")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("%d shot records", len(got))
	}
}

func TestGeometricEmotionNoiseDeterministic(t *testing.T) {
	run := func() float64 {
		p, err := New(Config{
			Scenario:     scene.PrototypeScenario(),
			Mode:         GeometricVision,
			Gaze:         gaze.EstimatorOptions{Seed: 9},
			EmotionNoise: 0.2,
			MaxFrames:    200,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		defer res.Repo.Close()
		return res.Layers.MeanOH()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("pipeline not deterministic: %v vs %v", a, b)
	}
}

func TestConfuseStaysInVocabulary(t *testing.T) {
	r := emoRand(1, 2, 3)
	for _, l := range emotion.AllLabels() {
		for i := 0; i < 20; i++ {
			got := confuse(l, r)
			if !got.Valid() {
				t.Fatalf("confuse(%v) = invalid %d", l, got)
			}
			if got == l {
				t.Fatalf("confuse(%v) returned the same label", l)
			}
		}
	}
}

// TestPipelineWithPaperRig runs the pipeline on the two-camera Fig. 2
// platform: fewer viewpoints, occasional occlusion, but the analysis
// must still complete and find the dominant participant.
func TestPipelineWithPaperRig(t *testing.T) {
	rig, err := camera.PaperRig(5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Scenario: scene.PrototypeScenario(),
		Rig:      rig,
		Mode:     GeometricVision,
		Gaze:     gaze.EstimatorOptions{Seed: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	if res.FramesAnalyzed != 610 {
		t.Errorf("frames = %d", res.FramesAnalyzed)
	}
	if res.Layers.Summary.Dominant() != 0 {
		t.Errorf("dominant = P%d, want P1 even with two cameras",
			res.Layers.Summary.Dominant()+1)
	}
}

// TestPipelineSingleCameraDegradesGracefully drops the rig to one
// camera: cross-camera transforms vanish and some heads may leave the
// frame, but the pipeline must neither fail nor emit garbage.
func TestPipelineSingleCameraDegradesGracefully(t *testing.T) {
	full, err := camera.PrototypeRig(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	single, err := camera.NewRig(25, full.Cameras[0])
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Scenario:  scene.PrototypeScenario(),
		Rig:       single,
		Mode:      GeometricVision,
		Gaze:      gaze.EstimatorOptions{Seed: 7},
		MaxFrames: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	// Counts must stay within physical bounds.
	for i := range res.Layers.Summary.IDs {
		for j := range res.Layers.Summary.IDs {
			c := res.Layers.Summary.Counts[i][j]
			if c < 0 || c > 200 {
				t.Fatalf("count[%d][%d] = %d out of bounds", i, j, c)
			}
		}
	}
}

// TestPixelVisionMultiCamera checks that analysing extra cameras never
// reduces coverage: participants observed with 2 cameras ⊇ those with 1.
func TestPixelVisionMultiCamera(t *testing.T) {
	if testing.Short() {
		t.Skip("pixel vision is expensive")
	}
	observed := func(cams int) map[int]bool {
		p, err := New(Config{
			Scenario:     scene.PrototypeScenario(),
			Mode:         PixelVision,
			Gaze:         gaze.EstimatorOptions{Seed: 4},
			MaxFrames:    30,
			DetectEvery:  4,
			PixelCameras: cams,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		defer res.Repo.Close()
		recs, err := res.Repo.Query("kind = observation")
		if err != nil {
			t.Fatal(err)
		}
		out := map[int]bool{}
		for _, r := range recs {
			out[r.Person] = true
		}
		return out
	}
	one := observed(1)
	two := observed(2)
	for id := range one {
		if !two[id] {
			t.Errorf("P%d observed with 1 camera but lost with 2", id+1)
		}
	}
	if len(two) < len(one) {
		t.Errorf("coverage shrank: %d → %d participants", len(one), len(two))
	}
}

// TestSpeakerInferenceOnDinner evaluates gaze-based speaker inference
// against the dinner script's ground truth during conversation phases,
// where listeners watch the speaker.
func TestSpeakerInferenceOnDinner(t *testing.T) {
	sc, err := scene.DinnerScenario(scene.DinnerOptions{
		Persons: 4, Frames: 2000, Seed: 31, Enjoyment: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Scenario: sc,
		Mode:     GeometricVision,
		Gaze:     gaze.EstimatorOptions{Seed: 31},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()

	sim, err := scene.NewSimulator(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Truth restricted to talking/ordering frames (listeners watch the
	// speaker there; while eating, gaze goes to plates).
	truth := make([]int, res.FramesAnalyzed)
	considered := 0
	for i := range truth {
		fs := sim.FrameState(i)
		truth[i] = -1
		if fs.Phase != scene.PhaseTalking && fs.Phase != scene.PhaseOrdering {
			continue
		}
		for _, ps := range fs.Persons {
			if ps.Speaking {
				truth[i] = ps.ID
				considered++
			}
		}
	}
	if considered < 100 {
		t.Fatalf("only %d speaking frames in truth", considered)
	}
	acc := layers.SpeakerAccuracy(res.Layers.InferredSpeakers, truth)
	// Chance over 4 speakers ≈ 0.25; gaze-based inference should do far
	// better despite the 25% of listeners scripted to look elsewhere.
	if acc < 0.6 {
		t.Errorf("speaker inference accuracy = %v, want ≥ 0.6", acc)
	}
}
