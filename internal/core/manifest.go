package core

// Run manifest and incremental re-extraction (DESIGN.md §7). Runs with
// Config.Incremental persist, through the metadata repository, a
// manifest of the executed stage graph — one annotation record per
// stage carrying its name, version and config hash, plus one run-level
// identity record — alongside the raw look-at layer ("lookat"
// observation records). Pipeline.RunIncremental diffs a new
// configuration's stage graph against a previous run's manifest and
// re-runs only the missing/stale stages, replaying every fresh raw
// layer from the stored records instead of re-extracting it — e.g. a
// retrained emotion model re-emits only the emotion and downstream
// derived records without re-decoding video.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/emotion"
	"repro/internal/gaze"
	"repro/internal/layers"
	"repro/internal/metadata"
)

// Manifest record vocabulary.
const (
	// lookatLabel tags the persisted raw gaze layer: one observation
	// record per look-at edge per frame.
	lookatLabel = "lookat"
	// runManifestLabel tags the run-level identity record.
	runManifestLabel = "run-manifest"
	// stageManifestLabel tags the per-stage manifest records.
	stageManifestLabel = "stage-manifest"
)

// ErrNoManifest reports that a repository holds no run manifest, so an
// incremental run cannot diff against it (run with Config.Incremental
// to write one).
var ErrNoManifest = errors.New("core: repository has no run manifest")

// manifestEntry is one stage's recorded fingerprint.
type manifestEntry struct {
	version int
	config  string
}

// runIdentity fingerprints everything that makes two runs' raw layers
// interchangeable: scenario, rig shape, vision mode, frame count and
// the effective extraction-lane count (not the raw PixelCameras
// knob — 0 and 1 mean the same thing, and geometric runs ignore it
// entirely). Any mismatch forces a full re-extraction.
func (p *Pipeline) runIdentity(numFrames, nCams int) string {
	return fmt.Sprintf("mode=%v frames=%d cams=%d lanes=%d scenario=%s",
		p.cfg.Mode, numFrames, len(p.rig.Cameras), nCams,
		configHash(fmt.Sprintf("%+v", p.cfg.Scenario)))
}

// manifestStage persists the run manifest: the run identity plus each
// executed stage's (name, version, config-hash) triple. It is
// registered into the graph only on manifest-keeping runs, so default
// runs stay byte-identical to the monolithic oracle.
func manifestStage(b *stageBuild) (*Stage, error) {
	numFrames := b.numFrames
	return &Stage{
		Name:    StageManifest,
		Version: 1,
		Phase:   PhaseFinal,
		RunFinal: func(env *runEnv) error {
			recs := []metadata.Record{{
				Kind: metadata.KindAnnotation, Frame: 0, FrameEnd: numFrames,
				Person: -1, Other: -1, Label: runManifestLabel,
				Tags: map[string]string{"identity": env.identity},
			}}
			for _, st := range env.graph.stages {
				recs = append(recs, metadata.Record{
					Kind: metadata.KindAnnotation, Frame: 0, FrameEnd: numFrames,
					Person: -1, Other: -1, Label: stageManifestLabel,
					Tags: map[string]string{
						"stage":   st.Name,
						"version": itoa(st.Version),
						"config":  configHash(st.Config),
					},
				})
			}
			if err := env.repo.AppendBatch(recs); err != nil {
				return fmt.Errorf("writing manifest: %w", err)
			}
			return nil
		},
	}, nil
}

// readManifest loads the run identity and per-stage entries of the
// repository's latest run. Like loadReplay, it resets at every run
// boundary (the context records each run writes first), so a
// directory whose newest appended run kept no manifest — an
// Incremental=false run, or one that failed before the manifest
// stage — reports ErrNoManifest instead of pairing an older manifest
// with the newer run's raw layers.
func readManifest(prev *metadata.Repository) (identity string, entries map[string]manifestEntry, err error) {
	entries = make(map[string]manifestEntry)
	scanErr := prev.Scan(func(r metadata.Record) bool {
		if r.Kind == metadata.KindContext && r.Label == "occasion" {
			identity = ""
			entries = make(map[string]manifestEntry)
			return true
		}
		if r.Kind != metadata.KindAnnotation {
			return true
		}
		switch r.Label {
		case runManifestLabel:
			identity = r.Tags["identity"]
		case stageManifestLabel:
			v := 0
			fmt.Sscanf(r.Tags["version"], "%d", &v)
			entries[r.Tags["stage"]] = manifestEntry{version: v, config: r.Tags["config"]}
		}
		return true
	})
	if scanErr != nil {
		return "", nil, fmt.Errorf("core: reading manifest: %w", scanErr)
	}
	if identity == "" || len(entries) == 0 {
		return "", nil, ErrNoManifest
	}
	return identity, entries, nil
}

// replayData is the raw layer replayed from a previous run.
type replayData struct {
	// lookat[i] is frame i's reconstructed look-at matrix (nil slice
	// when the gaze chain is stale and recomputed instead).
	lookat []gaze.Matrix
	// emotions[i] is frame i's person → emotion map.
	emotions []map[int]layers.EmotionObs
	// rerun marks extraction stages that execute this run; everything
	// else replays.
	rerun map[string]bool
	// gazeReplayed / emoReplayed select the per-frame source.
	gazeReplayed, emoReplayed bool
	// stale and reused are the manifest-diff outcome, for Result.
	stale, reused []string
}

// gazeChainStages produce the look-at layer; emotionChainStages
// produce the raw emotion layer. Staleness anywhere in a chain re-runs
// the whole chain (its stages feed each other within one frame).
var (
	gazeChainStages    = []string{StageGeoGaze, StagePxGaze, StageCollectGaze, StageGazeAnalysis}
	emotionChainStages = []string{StageGeoEmotion, StageFuseEmotions}
)

// loadReplay reconstructs the raw layers of prev for every frame. A
// repository directory can accumulate several appended runs (the log
// is append-only); records scan in append order, so the accumulators
// are reset at every run boundary — the context records each run
// writes first — and only the latest run's raw layers survive,
// matching readManifest's latest-wins rule.
func loadReplay(prev *metadata.Repository, numFrames int, ids []int) (*replayData, error) {
	rd := &replayData{}
	idx := make(map[int]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	reset := func() {
		rd.lookat = make([]gaze.Matrix, numFrames)
		rd.emotions = make([]map[int]layers.EmotionObs, numFrames)
		for i := range rd.lookat {
			rd.lookat[i] = gaze.NewMatrix(ids)
			rd.emotions[i] = make(map[int]layers.EmotionObs)
		}
	}
	reset()
	err := prev.Scan(func(r metadata.Record) bool {
		if r.Kind == metadata.KindContext && r.Label == "occasion" {
			reset() // a new run's records begin here
			return true
		}
		if r.Kind != metadata.KindObservation || r.Frame < 0 || r.Frame >= numFrames {
			return true
		}
		if r.Label == lookatLabel {
			fi, fok := idx[r.Person]
			ti, tok := idx[r.Other]
			if fok && tok {
				rd.lookat[r.Frame].M[fi][ti] = 1
			}
			return true
		}
		label, perr := emotion.ParseLabel(r.Label)
		if perr != nil {
			return true // not a raw emotion record
		}
		rd.emotions[r.Frame][r.Person] = layers.EmotionObs{Label: label, Confidence: r.Value}
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("core: replaying raw layers: %w", err)
	}
	return rd, nil
}

// RunIncremental executes the pipeline against a previous run's
// repository: it diffs the requested stage graph against the manifest
// recorded in prev (Config.Incremental runs write one) and re-runs
// only missing or stale stages — extra names in stale force
// re-derivation, e.g. after retraining a model whose fingerprint the
// stage cannot see. Fresh raw layers (look-at edges, emotion
// observations) are replayed from prev's records instead of
// re-extracted, so a stale-emotion re-run skips the gaze chain
// entirely and the vision layers never re-render; derived stages
// always re-run. (Exception: ParseVideo's composition analysis is an
// end-of-run pass over rendered footage and still re-renders the
// primary camera when enabled — leave it off for re-derivation
// workloads that must not touch video.) The output is a complete,
// self-contained result — records are byte-identical to a full run of
// the same configuration — written to a fresh repository per
// Config.RepoDir, which must not be the directory prev holds open
// (prev is only read; the caller still owns closing both).
//
// Falls back to a full run when prev's run identity (scenario, rig,
// mode, frame count) differs, and returns ErrNoManifest when prev
// carries no manifest. Stages whose re-extraction needs rendered
// pixels (the pixel vision's render/detect/track/classify chain)
// cannot be partially re-run: staleness there also falls back to a
// full run.
func (p *Pipeline) RunIncremental(prev *metadata.Repository, stale ...string) (*Result, error) {
	if dir := prev.Dir(); dir != "" && dir == p.cfg.RepoDir {
		// prev holds the directory's exclusive lease; opening the
		// output repository there would deadlock on ErrLocked with a
		// message blaming "another process".
		return nil, fmt.Errorf("core: incremental output RepoDir %q is the previous run's open repository — write elsewhere (or leave RepoDir empty for in-memory): %w", dir, ErrBadConfig)
	}
	graph, b, err := p.buildRunGraph(true)
	if err != nil {
		return nil, err
	}
	identity, entries, err := readManifest(prev)
	if err != nil {
		return nil, err
	}
	if identity != p.runIdentity(b.numFrames, b.nCams) {
		// The previous run's raw layers describe a different event —
		// nothing is replayable.
		return p.runGraph(graph, b, nil)
	}

	forced := make(map[string]bool, len(stale))
	known := make(map[string]bool, len(graph.stages))
	for _, st := range graph.stages {
		known[st.Name] = true
	}
	for _, name := range stale {
		if !known[name] {
			return nil, fmt.Errorf("core: -rederive stage %q not in this run's graph: %w", name, ErrBadConfig)
		}
		forced[name] = true
	}

	staleSet := make(map[string]bool)
	for _, st := range graph.stages {
		e, ok := entries[st.Name]
		if forced[st.Name] || !ok || e.version != st.Version || e.config != configHash(st.Config) {
			staleSet[st.Name] = true
		}
	}

	// Stale extraction stages must be recomputable from frame state
	// alone; otherwise the raw layer cannot be rebuilt without video.
	for _, st := range graph.stages {
		if staleSet[st.Name] && st.Phase < PhaseFrame && !st.Replayable {
			return p.runGraph(graph, b, nil)
		}
	}

	rd, err := loadReplay(prev, b.numFrames, b.ids)
	if err != nil {
		return nil, err
	}
	rd.rerun = make(map[string]bool)
	inChain := func(chain []string) bool {
		for _, n := range chain {
			if staleSet[n] {
				return true
			}
		}
		return false
	}
	if inChain(gazeChainStages) {
		for _, n := range gazeChainStages {
			rd.rerun[n] = true
		}
	} else {
		rd.gazeReplayed = true
	}
	if inChain(emotionChainStages) {
		for _, n := range emotionChainStages {
			rd.rerun[n] = true
		}
	} else {
		rd.emoReplayed = true
	}
	// Custom stale extraction stages outside the two raw chains simply
	// re-run (they declared themselves Replayable).
	for _, st := range graph.stages {
		if staleSet[st.Name] && st.Phase < PhaseFrame {
			rd.rerun[st.Name] = true
		}
	}
	// Upstream closure: a re-running stage needs its providers' output,
	// which only a full run materialises — pull each provider into the
	// re-run set too, or fall back when one cannot recompute without
	// video. (The built-in chains are already closed; this guards
	// custom registered stages.)
	providers := make(map[ArtifactKey]*Stage)
	for _, st := range graph.stages {
		for _, k := range st.Provides {
			providers[k] = st
		}
	}
	for changed := true; changed; {
		changed = false
		for _, st := range graph.stages {
			if st.Phase >= PhaseFrame || !rd.rerun[st.Name] {
				continue
			}
			for _, k := range st.Needs {
				prov := providers[k]
				if prov == nil || prov.Phase >= PhaseFrame || rd.rerun[prov.Name] {
					continue
				}
				if !prov.Replayable {
					return p.runGraph(graph, b, nil)
				}
				rd.rerun[prov.Name] = true
				changed = true
			}
		}
	}

	for _, st := range graph.stages {
		if staleSet[st.Name] {
			rd.stale = append(rd.stale, st.Name)
		} else if st.Phase < PhaseFrame && !rd.rerun[st.Name] {
			rd.reused = append(rd.reused, st.Name)
		}
	}
	sort.Strings(rd.stale)
	sort.Strings(rd.reused)

	return p.runGraph(graph, b, rd)
}

// runReplay is the incremental frame loop: fresh raw layers come from
// the replay store, stale chains are recomputed from the frame state,
// and the frame-serial stages re-derive everything downstream. No
// engine, no rendering — the loop is a pure function of (frame state,
// replayed records).
func (p *Pipeline) runReplay(env *runEnv, rd *replayData) error {
	g := env.graph
	// Re-running prepare stages get real per-stage scratch, the same
	// contract graphVision gives them on full runs.
	scratch := make([]any, len(g.byPhase[PhasePrepare]))
	for si, st := range g.byPhase[PhasePrepare] {
		if rd.rerun[st.Name] && st.NewScratch != nil {
			scratch[si] = st.NewScratch()
		}
	}
	for i := 0; i < env.numFrames; i++ {
		fs := p.sim.FrameState(i)
		fa := &FrameArtifacts{Index: i, FS: fs}
		var a *Artifacts
		t := time.Now()
		for si, st := range g.byPhase[PhasePrepare] {
			if !rd.rerun[st.Name] {
				continue
			}
			if a == nil {
				a = &Artifacts{Cam: 0, FS: fs}
				fa.PerCam = []*Artifacts{a}
			}
			if err := env.invoke(st, func() error { return st.RunCam(env, a, scratch[si]) }); err != nil {
				return fmt.Errorf("core: frame %d: stage %s: %w", i, st.Name, err)
			}
			now := time.Now()
			env.timer.add(st.Name, now.Sub(t))
			t = now
		}
		for _, st := range g.byPhase[PhaseMerge] {
			if !rd.rerun[st.Name] {
				continue
			}
			if fa.PerCam == nil {
				fa.PerCam = []*Artifacts{{Cam: 0, FS: fs}}
			}
			if err := env.invoke(st, func() error { return st.RunFrame(env, fa) }); err != nil {
				return fmt.Errorf("core: frame %d: stage %s: %w", i, st.Name, err)
			}
		}
		if rd.gazeReplayed {
			fa.LookAt = rd.lookat[i]
		}
		if rd.emoReplayed {
			fa.Emotions = rd.emotions[i]
		}
		for _, st := range g.byPhase[PhaseFrame] {
			if st.Name == StageGazeAnalysis && rd.gazeReplayed {
				continue
			}
			env.timer.start(st.Name)
			err := env.invoke(st, func() error { return st.RunFrame(env, fa) })
			env.timer.stop(st.Name)
			if err != nil {
				return fmt.Errorf("core: frame %d: stage %s: %w", i, st.Name, err)
			}
		}
		if err := env.flushIfFull(); err != nil {
			return err
		}
	}
	return nil
}
