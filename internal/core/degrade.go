package core

// Degraded-mode stage isolation (DESIGN.md §8): with Config.Degraded
// set, a panic inside a stage callback no longer kills the run.
// The panicking stage is quarantined — skipped for the rest of the
// run — together with the transitive closure of stages consuming its
// artifacts, since their inputs can no longer be produced. The run
// completes on the surviving stages and Result.Quarantined reports
// exactly what was lost. Strict runs (the default) call stages
// directly with no recover, so a panic still fails fast and healthy
// runs stay byte-identical to the pre-isolation pipeline.

import (
	"fmt"
	"sync"
)

// StageFailure reports one stage quarantined during a degraded run.
type StageFailure struct {
	// Stage is the quarantined stage's name.
	Stage string
	// Reason is the recovered panic value, or the error of a stage
	// that failed while consuming an already-quarantined upstream's
	// artifacts (true collateral, e.g. a summarizer handed nil layers
	// by a racing worker). Errors from stages independent of the
	// quarantined chain are never recorded here — they abort the run.
	Reason string
	// Downstream lists the stages disabled along with this one because
	// they consume its artifacts, transitively, in graph order.
	Downstream []string
}

// stageQuarantine is a run's kill-switch table: which stages are out,
// and why. Workers, consumers and the merger all consult it, so every
// access is under the mutex.
type stageQuarantine struct {
	graph   *stageGraph
	mu      sync.Mutex
	off     map[string]bool
	tainted map[ArtifactKey]bool
	report  []StageFailure
}

func newStageQuarantine(g *stageGraph) *stageQuarantine {
	return &stageQuarantine{
		graph:   g,
		off:     make(map[string]bool),
		tainted: make(map[ArtifactKey]bool),
	}
}

// disabled reports whether a stage has been quarantined.
func (q *stageQuarantine) disabled(name string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.off[name]
}

// collateral reports whether a stage consumes an artifact tainted by
// an earlier quarantine — i.e. whether its failure is plausibly
// fallout from a missing upstream rather than an independent fault.
func (q *stageQuarantine) collateral(st *Stage) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, k := range st.Needs {
		if q.tainted[k] {
			return true
		}
	}
	return false
}

// quarantine disables a failed stage plus every stage that transitively
// consumes its artifacts. Racing workers may report the same stage;
// the first wins and later reports are dropped.
func (q *stageQuarantine) quarantine(st *Stage, reason string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.off[st.Name] {
		return
	}
	q.off[st.Name] = true
	for _, k := range st.Provides {
		q.tainted[k] = true
	}
	var down []string
	for changed := true; changed; {
		changed = false
		for _, s := range q.graph.stages {
			if q.off[s.Name] {
				continue
			}
			hit := false
			for _, k := range s.Needs {
				if q.tainted[k] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			q.off[s.Name] = true
			down = append(down, s.Name)
			for _, k := range s.Provides {
				q.tainted[k] = true
			}
			changed = true
		}
	}
	q.report = append(q.report, StageFailure{Stage: st.Name, Reason: reason, Downstream: down})
}

// failures snapshots the quarantine report.
func (q *stageQuarantine) failures() []StageFailure {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]StageFailure, len(q.report))
	copy(out, q.report)
	for i := range out {
		out[i].Downstream = append([]string(nil), q.report[i].Downstream...)
	}
	return out
}

// invoke is the single choke point every stage callback runs through.
// Strict runs (no quarantine table) call the stage directly — no
// defer, no recover, the exact pre-isolation code path. Degraded runs
// skip quarantined stages, turn a panic into quarantine of the stage
// and its artifact dependents, and absorb errors of true collateral —
// a stage consuming a tainted artifact that a racing worker had
// already entered before the quarantine closure could disable it.
// Independent failures (I/O errors, metadata persistence) still abort
// the run: a degraded run is best-effort about the quarantined chain,
// not about everything.
func (env *runEnv) invoke(st *Stage, fn func() error) (err error) {
	q := env.quar
	if q == nil {
		return fn()
	}
	if q.disabled(st.Name) {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			q.quarantine(st, fmt.Sprintf("panic: %v", r))
			err = nil
		}
	}()
	if err = fn(); err != nil && q.collateral(st) {
		q.quarantine(st, err.Error())
		err = nil
	}
	return err
}
