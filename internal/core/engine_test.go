package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/emotion"
	"repro/internal/gaze"
	"repro/internal/metadata"
	"repro/internal/scene"
)

// testClassifier trains one small shared classifier so every engine test
// doesn't pay the default training cost.
var (
	testClfOnce sync.Once
	testClf     *emotion.Classifier
)

func engineTestClassifier(t *testing.T) *emotion.Classifier {
	t.Helper()
	testClfOnce.Do(func() {
		clf, err := emotion.NewClassifier(16, 1)
		if err != nil {
			t.Fatal(err)
		}
		ds := emotion.GenerateDataset(6, 3)
		if _, err := clf.Train(ds, emotion.TrainOptions{Epochs: 8, Seed: 2, LearningRate: 0.01}); err != nil {
			t.Fatal(err)
		}
		testClf = clf
	})
	if testClf == nil {
		t.Fatal("shared classifier failed to train")
	}
	return testClf
}

// runResult is everything the determinism tests compare: the multilayer
// output, the digest, and the full metadata record log (IDs included —
// parallel runs must be byte-identical, not merely equivalent).
type runResult struct {
	layers  interface{}
	summary interface{}
	records []metadata.Record
}

func captureRun(t *testing.T, cfg Config) runResult {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	var recs []metadata.Record
	res.Repo.Scan(func(r metadata.Record) bool {
		recs = append(recs, r)
		return true
	})
	return runResult{layers: res.Layers, summary: res.Summary, records: recs}
}

// TestParallelPixelMatchesSequential is the engine's core guarantee:
// a PixelVision run with a worker pool produces byte-identical layers,
// summary and metadata records to the Workers=1 sequential loop.
func TestParallelPixelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("pixel vision is expensive")
	}
	cfg := Config{
		Scenario:     scene.PrototypeScenario(),
		Mode:         PixelVision,
		Gaze:         gaze.EstimatorOptions{Seed: 4},
		Classifier:   engineTestClassifier(t),
		MaxFrames:    24,
		DetectEvery:  3,
		PixelCameras: 2,
	}
	seqCfg := cfg
	seqCfg.Workers = 1
	parCfg := cfg
	parCfg.Workers = 4

	seq := captureRun(t, seqCfg)
	par := captureRun(t, parCfg)

	if !reflect.DeepEqual(seq.layers, par.layers) {
		t.Error("parallel layers differ from sequential")
	}
	if !reflect.DeepEqual(seq.summary, par.summary) {
		t.Error("parallel summary differs from sequential")
	}
	if len(seq.records) == 0 {
		t.Fatal("sequential run produced no records")
	}
	if !reflect.DeepEqual(seq.records, par.records) {
		t.Errorf("parallel metadata records differ from sequential (%d vs %d records)",
			len(seq.records), len(par.records))
	}
}

// TestParallelGeometricMatchesSequential checks the single-stream
// (geometric) pipelining path the same way; it is cheap enough to run
// un-skipped with a high worker count.
func TestParallelGeometricMatchesSequential(t *testing.T) {
	cfg := Config{
		Scenario:     scene.PrototypeScenario(),
		Mode:         GeometricVision,
		Gaze:         gaze.EstimatorOptions{Seed: 9},
		EmotionNoise: 0.1,
		MaxFrames:    200,
	}
	seqCfg := cfg
	seqCfg.Workers = 1
	parCfg := cfg
	parCfg.Workers = 8

	seq := captureRun(t, seqCfg)
	par := captureRun(t, parCfg)

	if !reflect.DeepEqual(seq.layers, par.layers) {
		t.Error("parallel layers differ from sequential")
	}
	if !reflect.DeepEqual(seq.records, par.records) {
		t.Error("parallel metadata records differ from sequential")
	}
}

// TestWorkerPoolThreeCameras exercises the full worker pool with three
// per-camera streams — run under -race this is the engine's
// thread-safety gate (shared detector, recognizer, classifier and
// repository hit from concurrent goroutines).
func TestWorkerPoolThreeCameras(t *testing.T) {
	if testing.Short() {
		t.Skip("pixel vision is expensive")
	}
	p, err := New(Config{
		Scenario:     scene.PrototypeScenario(),
		Mode:         PixelVision,
		Gaze:         gaze.EstimatorOptions{Seed: 4},
		Classifier:   engineTestClassifier(t),
		MaxFrames:    18,
		DetectEvery:  3,
		PixelCameras: 3,
		Workers:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	if res.FramesAnalyzed != 18 {
		t.Errorf("analyzed %d frames, want 18", res.FramesAnalyzed)
	}
	recs, err := res.Repo.Query("kind = observation")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Error("three-camera parallel run produced no observations")
	}
}

// TestRunDefaultsToParallel ensures the Workers default engages the
// engine (GOMAXPROCS) without changing results.
func TestRunDefaultsToParallel(t *testing.T) {
	cfg := Config{
		Scenario:  scene.PrototypeScenario(),
		Mode:      GeometricVision,
		Gaze:      gaze.EstimatorOptions{Seed: 3},
		MaxFrames: 60,
	}
	def := captureRun(t, cfg) // Workers unset → GOMAXPROCS
	seqCfg := cfg
	seqCfg.Workers = 1
	seq := captureRun(t, seqCfg)
	if !reflect.DeepEqual(def.records, seq.records) {
		t.Error("default worker count changed pipeline output")
	}
}
