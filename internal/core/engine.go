package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/scene"
)

// frameSink consumes one frame's extraction payload in strict frame
// order: the frame-serial stages (gaze analysis, multilayer push,
// raw-record batching) run inside it.
type frameSink func(i int, fs scene.FrameState, out any) error

// frameVision extracts one frame's evidence into an opaque payload
// (the stage graph's FrameArtifacts).
type frameVision interface {
	extract(fs scene.FrameState) (any, error)
}

// streamedVision is a frameVision whose per-frame work splits into a
// stateless stage that may run on any worker in any order (prepare:
// render + detect) and a stateful stage that must see each stream's
// frames in order (step: track + recognize + classify). Streams are
// independent ordered lanes — one per camera in PixelVision — so the
// engine can pipeline frames within a stream and parallelise across
// streams while finish reassembles per-frame results in stream order,
// keeping output byte-identical to the sequential path.
type streamedVision interface {
	frameVision
	// streams returns the number of independent ordered lanes.
	streams() int
	// newScratch allocates one worker's reusable stateless-stage
	// scratch (per-frame integral tables and the like). Each engine
	// worker owns one scratch for its lifetime, so heavy per-frame
	// buffers are built once per (camera, frame) and reused across
	// frames instead of reallocated per call.
	newScratch() any
	// prepare runs the heavy stateless stage for one (stream, frame),
	// with exclusive use of the calling worker's scratch. It must not
	// touch mutable per-stream state.
	prepare(stream int, fs scene.FrameState, scratch any) any
	// step consumes prepare's output for one stream in strict frame
	// order, advancing per-stream state (trackers).
	step(stream int, fs scene.FrameState, prep any) (any, error)
	// finish merges the per-stream step results for one frame, in
	// stream order, into the frame's extraction payload.
	finish(fs scene.FrameState, perStream []any) (any, error)
}

// runFrames drives the per-frame extraction loop. With one worker (or a
// vision that cannot be staged) it runs the plain sequential loop;
// otherwise it hands off to the pipelined engine. Both paths deliver
// frames to sink in strict index order. frameAt supplies frame states
// (the simulator's FrameState for finite runs, a cycling wrapper for
// unbounded streams); a nil ctx means not cancellable.
func (p *Pipeline) runFrames(ctx context.Context, frameAt func(int) scene.FrameState, numFrames, workers int, vision frameVision, timer *stageTimer, sink frameSink) error {
	sv, staged := vision.(streamedVision)
	if workers <= 1 || !staged || numFrames == 0 {
		for i := 0; i < numFrames; i++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			fs := frameAt(i)
			timer.start("feature-extraction")
			out, err := vision.extract(fs)
			timer.stop("feature-extraction")
			if err != nil {
				return fmt.Errorf("core: frame %d: %w", i, err)
			}
			if err := sink(i, fs, out); err != nil {
				return err
			}
		}
		return nil
	}
	return runStreamed(ctx, frameAt, numFrames, workers, sv, timer, sink)
}

// prepPayload travels from a feeder through a worker to a stream
// consumer; carrying the frame state along avoids recomputing it.
type prepPayload struct {
	fs   scene.FrameState
	prep any
}

// stepPayload travels from a stream consumer to the merger.
type stepPayload struct {
	fs  scene.FrameState
	res any
}

// runStreamed is the concurrent extraction engine:
//
//	feeders (1/stream) → worker pool (prepare) → consumers (1/stream,
//	ordered step) → merger (finish + sink, frame order)
//
// Ordering: each stream owns a ring of one-shot slots sized to the
// in-flight window. A feeder enqueues (stream, frame) tasks in frame
// order, each tagged with its slot; workers run prepare and deliver
// into the slot; the stream's consumer reads slots in frame order, so
// step always sees ordered frames no matter which worker finished
// first. A per-stream semaphore bounds the window, which both caps
// buffered frames and guarantees a slot is drained before its reuse.
// The merger collects one step result per stream per frame (stream
// order) and calls finish + sink, so downstream consumers observe
// exactly the sequential frame order.
func runStreamed(ctx context.Context, frameAt func(int) scene.FrameState, numFrames, workers int, sv streamedVision, timer *stageTimer, sink frameSink) error {
	nStreams := sv.streams()
	window := workers + 2

	type task struct {
		stream int
		fs     scene.FrameState
		slot   chan prepPayload
	}
	tasks := make(chan task, workers)
	done := make(chan struct{})
	var once sync.Once
	cancel := func() { once.Do(func() { close(done) }) }
	defer cancel()

	// External cancellation folds into the engine's own teardown signal:
	// the watcher trips cancel when ctx fires, every select on done
	// unwinds, and the merger reports the context error.
	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				cancel()
			case <-done:
			}
		}()
	}

	// Worker pool: stateless prepare, any stream, any order. Each
	// worker owns one scratch so per-frame tables (detection integrals)
	// are built into reused buffers, never reallocated.
	for w := 0; w < workers; w++ {
		go func() {
			scratch := sv.newScratch()
			for {
				select {
				case <-done:
					return
				case t, ok := <-tasks:
					if !ok {
						return
					}
					t0 := time.Now()
					prep := sv.prepare(t.stream, t.fs, scratch)
					timer.add("feature-extraction", time.Since(t0))
					// Never blocks: the window semaphore guarantees the
					// slot was drained before this frame was enqueued.
					t.slot <- prepPayload{fs: t.fs, prep: prep}
				}
			}
		}()
	}

	errs := make(chan error, nStreams)
	outs := make([]chan stepPayload, nStreams)
	slots := make([][]chan prepPayload, nStreams)
	sems := make([]chan struct{}, nStreams)
	var feedWG, consWG sync.WaitGroup
	for s := 0; s < nStreams; s++ {
		outs[s] = make(chan stepPayload, 2)
		slots[s] = make([]chan prepPayload, window)
		for i := range slots[s] {
			slots[s][i] = make(chan prepPayload, 1)
		}
		sems[s] = make(chan struct{}, window)

		consWG.Add(1)
		go func(s int) { // consumer: ordered stateful step
			defer consWG.Done()
			for i := 0; i < numFrames; i++ {
				var pp prepPayload
				select {
				case pp = <-slots[s][i%window]:
				case <-done:
					return
				}
				t0 := time.Now()
				res, err := sv.step(s, pp.fs, pp.prep)
				timer.add("feature-extraction", time.Since(t0))
				if err != nil {
					errs <- fmt.Errorf("core: frame %d: %w", i, err)
					cancel()
					return
				}
				select {
				case outs[s] <- stepPayload{fs: pp.fs, res: res}:
				case <-done:
					return
				}
				<-sems[s]
			}
		}(s)
	}

	// One feeder computes each frame state exactly once and fans it out
	// to every stream (FrameState is immutable, so sharing is safe).
	// The merger synchronises streams per frame anyway, so interleaving
	// all streams through one feeder costs no parallelism.
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		for i := 0; i < numFrames; i++ {
			fs := frameAt(i)
			for s := 0; s < nStreams; s++ {
				select {
				case sems[s] <- struct{}{}:
				case <-done:
					return
				}
				t := task{stream: s, fs: fs, slot: slots[s][i%window]}
				select {
				case tasks <- t:
				case <-done:
					return
				}
			}
		}
	}()
	go func() { feedWG.Wait(); close(tasks) }()

	// Merger: reassemble per-stream results in frame order.
	perStream := make([]any, nStreams)
	var runErr error
merge:
	for i := 0; i < numFrames; i++ {
		var fs scene.FrameState
		for s := 0; s < nStreams; s++ {
			select {
			case sp := <-outs[s]:
				perStream[s] = sp.res
				fs = sp.fs
			case runErr = <-errs:
				break merge
			case <-done:
				// Externally cancelled (ctx) — or a consumer error whose
				// errs send raced the close. Prefer the concrete error.
				select {
				case runErr = <-errs:
				default:
					if ctx != nil {
						runErr = ctx.Err()
					}
					if runErr == nil {
						runErr = context.Canceled
					}
				}
				break merge
			}
		}
		out, err := sv.finish(fs, perStream)
		if err == nil {
			err = sink(i, fs, out)
		}
		if err != nil {
			runErr = err
			break
		}
	}
	cancel()
	consWG.Wait()
	feedWG.Wait()
	if runErr == nil {
		select {
		case runErr = <-errs:
		default:
		}
	}
	return runErr
}
