// Package repro benchmarks every figure and table of the DiEvent paper
// plus the ablations DESIGN.md calls out. Each Benchmark maps to a row
// of the experiment index (DESIGN.md §3); cmd/repro prints the
// corresponding measured values.
package repro

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/camera"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/emotion"
	"repro/internal/face"
	"repro/internal/gaze"
	"repro/internal/hmm"
	"repro/internal/img"
	"repro/internal/layers"
	"repro/internal/lbp"
	"repro/internal/metadata"
	"repro/internal/nn"
	"repro/internal/parsing"
	"repro/internal/scene"
	"repro/internal/video"
)

// --- shared fixtures (built once; benchmarks must not pay setup) ---

func mustSim(b *testing.B) *scene.Simulator {
	b.Helper()
	sim, err := scene.NewSimulator(scene.PrototypeScenario())
	if err != nil {
		b.Fatal(err)
	}
	return sim
}

func mustRig(b *testing.B) *camera.Rig {
	b.Helper()
	rig, err := camera.PrototypeRig(6, 5)
	if err != nil {
		b.Fatal(err)
	}
	return rig
}

// BenchmarkFig2Projection measures the acquisition-platform geometry
// path: projecting world points through a calibrated camera (Fig. 2
// substrate).
func BenchmarkFig2Projection(b *testing.B) {
	rig := mustRig(b)
	cam := rig.Cameras[0]
	sim := mustSim(b)
	fs := sim.FrameState(250)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range fs.Persons {
			if _, err := cam.Project(p.Head.Position); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig3VideoParsing measures shot-boundary detection and
// hierarchy construction over a pre-rendered multi-shot composition
// (Fig. 3).
func BenchmarkFig3VideoParsing(b *testing.B) {
	sim := mustSim(b)
	rig := mustRig(b)
	opt := video.RenderOptions{NoiseSigma: 1.5}
	mk := func(cam, from, to int) video.Source {
		s, err := video.NewSourceRange(video.NewRenderer(sim, rig.Cameras[cam], opt), from, to)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	comp, err := video.Compose(
		[]video.Source{mk(0, 0, 150), mk(2, 0, 150)},
		[]video.Shot{
			{Source: 0, Len: 60},
			{Source: 1, Len: 50, TransitionIn: video.Cut},
			{Source: 0, Len: 60, TransitionIn: video.Dissolve},
		})
	if err != nil {
		b.Fatal(err)
	}
	frames := comp.Frames()
	an := parsing.NewAnalyzer(parsing.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.AnalyzeFrames(frames); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4LookAtMatrix measures one frame's look-at matrix: the
// n(n−1) transform-chain + ray-sphere procedure of §II-D.1 (Fig. 4).
func BenchmarkFig4LookAtMatrix(b *testing.B) {
	sim := mustSim(b)
	rig := mustRig(b)
	est := gaze.NewEstimator(gaze.EstimatorOptions{Seed: 1})
	det := gaze.NewDetector()
	ids := []int{0, 1, 2, 3}
	obs := est.Observe(sim.FrameState(250), rig)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.LookAt(obs, rig, ids); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5OverallEmotion measures the Fig. 5 fusion: 100 frames of
// per-person emotion observations pushed through the multilayer
// analyzer and fused into overall-happiness estimates.
func BenchmarkFig5OverallEmotion(b *testing.B) {
	sim := mustSim(b)
	ids := []int{0, 1, 2, 3}
	p, err := core.New(core.Config{Scenario: scene.PrototypeScenario()})
	if err != nil {
		b.Fatal(err)
	}
	ctx := p.Context()
	// Pre-compute 100 frames of inputs (empty gaze; emotion fusion is
	// the measured path).
	var inputs []layers.FrameInput
	for f := 0; f < 100; f++ {
		fs := sim.FrameState(f)
		emo := make(map[int]layers.EmotionObs, 4)
		for _, ps := range fs.Persons {
			emo[ps.ID] = layers.EmotionObs{Label: ps.Emotion, Confidence: 0.9}
		}
		inputs = append(inputs, layers.FrameInput{
			Index: f, Time: fs.Time, LookAt: gaze.NewMatrix(ids), Emotions: emo,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an, err := layers.NewAnalyzer(ctx, layers.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, in := range inputs {
			if err := an.Push(in); err != nil {
				b.Fatal(err)
			}
		}
		res := an.Finalize()
		if len(res.Overall) != 100 {
			b.Fatal("fusion lost frames")
		}
	}
}

// BenchmarkFig7LookAtMap measures the full Fig. 7 path for one frame:
// observe all four participants through the rig, then build the matrix.
func BenchmarkFig7LookAtMap(b *testing.B) {
	sim := mustSim(b)
	rig := mustRig(b)
	est := gaze.NewEstimator(gaze.EstimatorOptions{Seed: 1})
	det := gaze.NewDetector()
	ids := []int{0, 1, 2, 3}
	fs := sim.FrameState(250)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs := est.Observe(fs, rig)
		if _, err := det.LookAt(obs, rig, ids); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Summary measures the complete 610-frame summary-matrix
// construction (observe + matrix + accumulate), i.e. regenerating
// Fig. 9 from scratch.
func BenchmarkFig9Summary(b *testing.B) {
	sim := mustSim(b)
	rig := mustRig(b)
	est := gaze.NewEstimator(gaze.EstimatorOptions{Seed: 1})
	det := gaze.NewDetector()
	ids := []int{0, 1, 2, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := gaze.NewSummary(ids)
		for f := 0; f < 610; f++ {
			obs := est.Observe(sim.FrameState(f), rig)
			m, err := det.LookAt(obs, rig, ids)
			if err != nil {
				b.Fatal(err)
			}
			if err := sum.Add(m); err != nil {
				b.Fatal(err)
			}
		}
		if sum.Dominant() != 0 {
			b.Fatal("dominance changed — benchmark invalid")
		}
	}
}

// --- T-A: emotion recognition ---

// BenchmarkEmotionClassify measures one LBP+NN classification of a
// 64×64 face crop (experiment T-A).
func BenchmarkEmotionClassify(b *testing.B) {
	clf, err := emotion.NewClassifier(48, 1)
	if err != nil {
		b.Fatal(err)
	}
	ds := emotion.GenerateDataset(10, 1)
	if _, err := clf.Train(ds, emotion.TrainOptions{Epochs: 5, Seed: 2, LearningRate: 0.01}); err != nil {
		b.Fatal(err)
	}
	face := emotion.GenerateFace(emotion.Happy, 3, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := clf.Classify(face); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLBPDescriptor measures the raw LBP grid-descriptor
// extraction.
func BenchmarkLBPDescriptor(b *testing.B) {
	f := emotion.GenerateFace(emotion.Surprise, 5, 180)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lbp.GridDescriptor(f, 4, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNForward measures one forward pass of the emotion network
// shape (944-48-7) on the pipeline's inference entry point (Classify,
// which reuses pooled activation scratch and allocates nothing warm).
func BenchmarkNNForward(b *testing.B) {
	net, err := nn.New(nn.Config{Sizes: []int{944, 48, 7}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 944)
	for i := range x {
		x[i] = float64(i%59) / 59
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := net.Classify(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNForwardBatch measures the batched forward pass on the
// emotion network shape at a realistic per-frame batch (8 faces),
// float and int8 — per-sample cost should beat BenchmarkNNForward
// because one weight-row walk serves the whole batch.
func BenchmarkNNForwardBatch(b *testing.B) {
	net, err := nn.New(nn.Config{Sizes: []int{944, 48, 7}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	const batch = 8
	xs := make([][]float64, batch)
	for s := range xs {
		x := make([]float64, 944)
		for i := range x {
			x[i] = float64((i+s)%59) / 59
		}
		xs[s] = x
	}
	b.Run("float", func(b *testing.B) {
		var cls []int
		var conf []float64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if cls, conf, err = net.ClassifyBatch(xs, cls, conf); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
	})
	q := net.Quantize()
	b.Run("int8", func(b *testing.B) {
		var cls []int
		var conf []float64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if cls, conf, err = q.ClassifyBatch(xs, cls, conf); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
	})
}

// BenchmarkFaceInferenceBatch measures the per-face inference path the
// classify stage runs each frame — batched identity (face.IdentifyBatch)
// plus batched emotion classification — over an 8-face frame, reporting
// faces/s. This is the headline number behind BENCH faces/s.
func BenchmarkFaceInferenceBatch(b *testing.B) {
	clf := benchClassifier(b)
	rec := face.NewRecognizer()
	var faces []*img.Gray
	for p := 0; p < 4; p++ {
		id := fmt.Sprintf("P%d", p)
		tone := uint8(100 + 30*p)
		for v := uint64(0); v < 2; v++ {
			crop := emotion.GenerateFace(emotion.Neutral, uint64(p)*8+v, tone)
			if err := rec.Enroll(id, crop); err != nil {
				b.Fatal(err)
			}
			faces = append(faces, crop)
		}
	}
	var ids []string
	var sims []float64
	var labels []emotion.Label
	var confs []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, sims = rec.IdentifyBatch(faces, ids, sims)
		var err error
		if labels, confs, err = clf.ClassifyBatch(faces, labels, confs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(faces))*float64(b.N)/b.Elapsed().Seconds(), "faces/s")
}

// --- T-B: eye-contact ablation ---

// BenchmarkECDetection measures the ray-sphere eye-contact test across
// a noise sweep configuration (experiment T-B's inner loop).
func BenchmarkECDetection(b *testing.B) {
	sim := mustSim(b)
	rig := mustRig(b)
	ids := []int{0, 1, 2, 3}
	for _, noise := range []float64{2, 6} {
		b.Run(fmt.Sprintf("noise%.0fdeg", noise), func(b *testing.B) {
			est := gaze.NewEstimator(gaze.EstimatorOptions{Seed: 1, GazeNoiseDeg: noise})
			det := gaze.NewDetector()
			obs := est.Observe(sim.FrameState(150), rig)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.LookAt(obs, rig, ids); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T-C: pipeline throughput ---

// BenchmarkPipelineEndToEnd measures the full geometric pipeline over
// the 610-frame prototype (experiment T-C).
func BenchmarkPipelineEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := core.New(core.Config{
			Scenario: scene.PrototypeScenario(),
			Mode:     core.GeometricVision,
			Gaze:     gaze.EstimatorOptions{Seed: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			b.Fatal(err)
		}
		res.Repo.Close()
	}
}

// BenchmarkRenderFrame measures synthetic 640×480 frame rendering on
// the engine's steady-state path: drawing into a reused pooled buffer,
// so allocations/op stay near zero.
func BenchmarkRenderFrame(b *testing.B) {
	sim := mustSim(b)
	rig := mustRig(b)
	r := video.NewRenderer(sim, rig.Cameras[0], video.RenderOptions{NoiseSigma: 2})
	frame := r.AcquireFrame()
	defer r.ReleaseFrame(frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame = r.RenderStateInto(sim.FrameState(i%610), frame)
	}
}

// benchClassifier trains one small shared emotion classifier for the
// parallel-pipeline benchmark (setup must not be paid inside b.N).
var (
	benchClfOnce sync.Once
	benchClf     *emotion.Classifier
	benchClfErr  error
)

func benchClassifier(b *testing.B) *emotion.Classifier {
	b.Helper()
	benchClfOnce.Do(func() {
		clf, err := emotion.NewClassifier(48, 1)
		if err != nil {
			benchClfErr = err
			return
		}
		ds := emotion.GenerateDataset(10, 1)
		if _, err := clf.Train(ds, emotion.TrainOptions{Epochs: 5, Seed: 2, LearningRate: 0.01}); err != nil {
			benchClfErr = err
			return
		}
		benchClf = clf
	})
	if benchClfErr != nil {
		b.Fatal(benchClfErr)
	}
	return benchClf
}

// BenchmarkPipelineParallel measures the concurrent PixelVision
// extraction engine over a bounded prototype prefix (two cameras,
// staggered detection). Workers defaults to GOMAXPROCS, so a
// `-cpu 1,2,4` sweep exercises worker pools of the matching sizes —
// the experiment behind the engine's ≥2× scaling claim.
func BenchmarkPipelineParallel(b *testing.B) {
	p, err := core.New(core.Config{
		Scenario:     scene.PrototypeScenario(),
		Mode:         core.PixelVision,
		Gaze:         gaze.EstimatorOptions{Seed: 1},
		Classifier:   benchClassifier(b),
		MaxFrames:    30,
		DetectEvery:  3,
		PixelCameras: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Run()
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Repo.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineIncremental measures an incremental re-run with
// only the emotion stage stale (DESIGN.md §7): the gaze chain — the
// geometric pipeline's dominant cost — is replayed from the previous
// run's persisted look-at records, so the re-run must complete in
// under 50% of a full 610-frame run (compare BenchmarkPipelineFull610
// below, the same manifest-keeping configuration run end to end).
func BenchmarkPipelineIncremental(b *testing.B) {
	cfg := core.Config{
		Scenario:    scene.PrototypeScenario(),
		Mode:        core.GeometricVision,
		Gaze:        gaze.EstimatorOptions{Seed: 1},
		Incremental: true,
	}
	p0, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	prev, err := p0.Run()
	if err != nil {
		b.Fatal(err)
	}
	defer prev.Repo.Close()

	stale := cfg
	stale.EmotionNoise = 0.07 // "retrained" emotion model
	p, err := core.New(stale)
	if err != nil {
		b.Fatal(err)
	}
	// Validity guard: the gaze chain must actually be replayed.
	res, err := p.RunIncremental(prev.Repo)
	if err != nil {
		b.Fatal(err)
	}
	reusedGaze := false
	for _, n := range res.ReusedStages {
		if n == core.StageGeoGaze {
			reusedGaze = true
		}
	}
	res.Repo.Close()
	if !reusedGaze {
		b.Fatalf("gaze chain not reused (stale=%v) — benchmark invalid", res.StaleStages)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.RunIncremental(prev.Repo)
		if err != nil {
			b.Fatal(err)
		}
		res.Repo.Close()
	}
}

// BenchmarkPipelineFull610 is BenchmarkPipelineIncremental's
// denominator: the same manifest-keeping 610-frame geometric run,
// executed in full.
func BenchmarkPipelineFull610(b *testing.B) {
	p, err := core.New(core.Config{
		Scenario:    scene.PrototypeScenario(),
		Mode:        core.GeometricVision,
		Gaze:        gaze.EstimatorOptions{Seed: 1},
		Incremental: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Run()
		if err != nil {
			b.Fatal(err)
		}
		res.Repo.Close()
	}
}

// BenchmarkFaceDetect measures one full-frame multi-scale face
// detection pass (PixelVision's dominant cost) on the fused
// template-matching engine (DESIGN.md §6), reporting coarse-grid
// windows scanned per second alongside ns/op.
func BenchmarkFaceDetect(b *testing.B) {
	sim := mustSim(b)
	rig := mustRig(b)
	r := video.NewRenderer(sim, rig.Cameras[0], video.RenderOptions{})
	frame := r.Render(250).Pixels
	det, err := face.NewDetector(face.DetectorOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = det.Detect(frame)
	}
	b.StopTimer()
	windows := float64(det.GridWindows(frame.W, frame.H))
	perOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(windows/perOp, "windows/s")
}

// BenchmarkFaceDetectShared measures the engine's steady-state path:
// DetectIntegrals over caller-built summed-area tables, the form the
// extraction engine drives once per (camera, frame) with pooled
// buffers.
func BenchmarkFaceDetectShared(b *testing.B) {
	sim := mustSim(b)
	rig := mustRig(b)
	r := video.NewRenderer(sim, rig.Cameras[0], video.RenderOptions{})
	frame := r.Render(250).Pixels
	det, err := face.NewDetector(face.DetectorOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var in *img.Integral
	var sq *img.IntegralSq
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, sq = img.BuildIntegrals(frame, in, sq)
		_ = det.DetectIntegrals(frame, in, sq)
	}
}

// --- T-D: metadata repository ---

// BenchmarkMetadataIngest measures durable record appends.
func BenchmarkMetadataIngest(b *testing.B) {
	dir, err := os.MkdirTemp("", "dievent-bench")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	repo, err := metadata.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := repo.Append(metadata.Record{
			Kind: metadata.KindObservation, Frame: i, FrameEnd: i + 1,
			Time:   time.Duration(i) * 40 * time.Millisecond,
			Person: i % 4, Other: -1, Label: "happy", Value: 0.9,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetadataQuery measures an indexed semantic query over a
// 50k-record repository (experiment T-D).
func BenchmarkMetadataQuery(b *testing.B) {
	repo := metadata.NewMem()
	labels := []string{"happy", "sad", "neutral", "eye-contact"}
	for i := 0; i < 50000; i++ {
		if _, err := repo.Append(metadata.Record{
			Kind: metadata.KindObservation, Frame: i, FrameEnd: i + 1,
			Person: i % 4, Other: -1, Label: labels[i%4], Value: float64(i%100) / 100,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := repo.Query("label = 'eye-contact' AND person = 4 AND frame >= 25000")
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) == 0 {
			b.Fatal("query became empty — benchmark invalid")
		}
	}
}

// benchRepo1M builds the shared 1M-record repository for the planned
// query benchmarks once: three bulk emotion labels, a sparse
// "eye-contact" label (1/64), a rare "alert-negative-spike" label
// (1/8192), 16 participants, frames advancing every 4 records.
var (
	repo1MOnce sync.Once
	repo1M     *metadata.Repository
	repo1MErr  error
)

func benchRepo1M(b *testing.B) *metadata.Repository {
	b.Helper()
	repo1MOnce.Do(func() {
		r := metadata.NewMem()
		labels := []string{"happy", "neutral", "sad"}
		batch := make([]metadata.Record, 0, 8192)
		for i := 0; i < 1_000_000; i++ {
			label := labels[i%3]
			switch {
			case i%8192 == 4095:
				label = "alert-negative-spike"
			case i%64 == 63:
				label = "eye-contact"
			}
			batch = append(batch, metadata.Record{
				Kind: metadata.KindObservation, Frame: i / 4, FrameEnd: i/4 + 1,
				Time:   time.Duration(i/4) * 40 * time.Millisecond,
				Person: i % 16, Other: -1, Label: label, Value: float64(i%1000) / 1000,
			})
			if len(batch) == cap(batch) {
				if repo1MErr = r.AppendBatch(batch); repo1MErr != nil {
					return
				}
				batch = batch[:0]
			}
		}
		if repo1MErr = r.AppendBatch(batch); repo1MErr != nil {
			return
		}
		repo1M = r
	})
	if repo1MErr != nil {
		b.Fatal(repo1MErr)
	}
	return repo1M
}

// benchQueries1M are the selective shapes of the ≥5× planner claim:
// a rare label, a label∩person intersection, and a frame window.
var benchQueries1M = []struct{ name, q string }{
	{"label", "label = 'alert-negative-spike'"},
	{"person", "label = 'eye-contact' AND person = 16"},
	{"frameRange", "frame >= 200000 AND frame < 200100"},
}

// BenchmarkQueryPlanned1M measures the planned, parallel engine on
// selective queries over a 1M-record repository.
func BenchmarkQueryPlanned1M(b *testing.B) {
	repo := benchRepo1M(b)
	for _, bq := range benchQueries1M {
		b.Run(bq.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				recs, err := repo.Query(bq.q)
				if err != nil {
					b.Fatal(err)
				}
				if len(recs) == 0 {
					b.Fatal("query became empty — benchmark invalid")
				}
			}
		})
	}
}

// BenchmarkQueryNaive1M measures the reference full-scan interpreter on
// the same queries — the baseline of the planner's speedup claim.
func BenchmarkQueryNaive1M(b *testing.B) {
	repo := benchRepo1M(b)
	for _, bq := range benchQueries1M {
		expr, err := metadata.Parse(bq.q)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bq.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				recs, err := repo.NaiveQueryExpr(expr)
				if err != nil {
					b.Fatal(err)
				}
				if len(recs) == 0 {
					b.Fatal("query became empty — benchmark invalid")
				}
			}
		})
	}
}

// BenchmarkMetadataIngestSegmented measures batched durable ingest
// through the segmented store with a small roll threshold, so the
// steady state includes segment seals and manifest swaps — the
// worst-case ingest overhead of the segmented engine vs the old
// single-file log.
func BenchmarkMetadataIngestSegmented(b *testing.B) {
	dir := b.TempDir()
	repo, err := metadata.Open(dir, metadata.WithSegmentSize(1<<20))
	if err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	const batch = 256
	recs := make([]metadata.Record, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		for j := range recs {
			f := i + j
			recs[j] = metadata.Record{
				Kind: metadata.KindObservation, Frame: f, FrameEnd: f + 1,
				Time:   time.Duration(f) * 40 * time.Millisecond,
				Person: f % 4, Other: -1, Label: "happy", Value: 0.9,
			}
		}
		if err := repo.AppendBatch(recs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetadataAppendDuringCompact measures append latency while a
// compaction loop continuously merges sealed segments — the tentpole
// claim that compaction no longer blocks appends for the duration of
// the rewrite (it holds the write lock only to seal and to swap the
// manifest).
func BenchmarkMetadataAppendDuringCompact(b *testing.B) {
	dir := b.TempDir()
	repo, err := metadata.Open(dir, metadata.WithSegmentSize(256<<10))
	if err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	// Preload sealed segments worth of data so each Compact has a real
	// rewrite to do.
	seed := make([]metadata.Record, 50000)
	for i := range seed {
		seed[i] = metadata.Record{
			Kind: metadata.KindObservation, Frame: i, FrameEnd: i + 1,
			Person: i % 4, Other: -1, Label: "happy", Value: 0.9,
		}
	}
	if err := repo.AppendBatch(seed); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	compactErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				compactErr <- nil
				return
			default:
			}
			if err := repo.Compact(); err != nil {
				compactErr <- err
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := 50000 + i
		_, err := repo.Append(metadata.Record{
			Kind: metadata.KindObservation, Frame: f, FrameEnd: f + 1,
			Person: f % 4, Other: -1, Label: "sad", Value: 0.5,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	if err := <-compactErr; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkColdOpenQuery measures the cold-open query path — open a
// persisted repository, run one selective query, close — with and
// without statistics pushdown (DESIGN.md §9). The fixture holds ≥1M
// records across ≥64 sealed segments; the query's frame window lives in
// a handful of them, so the pushdown open skips nearly every segment
// without decoding it. The headline claim: pushdown ≥3× faster than
// full replay.
func BenchmarkColdOpenQuery(b *testing.B) {
	dir := b.TempDir()
	const query = "frame >= 200000 AND frame < 200100"
	buildColdOpenFixture(b, dir)
	expr, err := metadata.Parse(query)
	if err != nil {
		b.Fatal(err)
	}

	// Validity guard, once: pushdown results must be byte-identical to
	// full replay, and segments must actually be skipped.
	full, err := metadata.Open(dir, metadata.WithReadOnly())
	if err != nil {
		b.Fatal(err)
	}
	want, err := full.QueryExpr(expr)
	if err != nil {
		b.Fatal(err)
	}
	full.Close()
	cold, err := metadata.Open(dir, metadata.WithReadOnly(), metadata.WithOpenFilter(expr))
	if err != nil {
		b.Fatal(err)
	}
	got, err := cold.QueryExpr(expr)
	if err != nil {
		b.Fatal(err)
	}
	st, err := cold.Stats()
	if err != nil {
		b.Fatal(err)
	}
	cold.Close()
	if len(want) == 0 || len(got) != len(want) {
		b.Fatalf("pushdown diverged: %d vs %d rows — benchmark invalid", len(got), len(want))
	}
	if len(st.Segments) < 64 || st.SkippedSegments < len(st.Segments)/2 {
		b.Fatalf("fixture shape wrong: %d segments, %d skipped — benchmark invalid",
			len(st.Segments), st.SkippedSegments)
	}

	b.Run("pushdown", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := metadata.Open(dir, metadata.WithReadOnly(), metadata.WithOpenFilter(expr))
			if err != nil {
				b.Fatal(err)
			}
			recs, err := r.QueryExpr(expr)
			if err != nil {
				b.Fatal(err)
			}
			if len(recs) != len(want) {
				b.Fatal("query result changed — benchmark invalid")
			}
			r.Close()
		}
	})
	b.Run("fullReplay", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := metadata.Open(dir, metadata.WithReadOnly())
			if err != nil {
				b.Fatal(err)
			}
			recs, err := r.QueryExpr(expr)
			if err != nil {
				b.Fatal(err)
			}
			if len(recs) != len(want) {
				b.Fatal("query result changed — benchmark invalid")
			}
			r.Close()
		}
	})
}

// buildColdOpenFixture persists the 1M-record population of benchRepo1M
// into small segments (SyncNone: build speed, not ingest durability, is
// what matters here).
func buildColdOpenFixture(b *testing.B, dir string) {
	b.Helper()
	r, err := metadata.Open(dir,
		metadata.WithSegmentSize(512<<10), metadata.WithSyncPolicy(metadata.SyncNone))
	if err != nil {
		b.Fatal(err)
	}
	labels := []string{"happy", "neutral", "sad"}
	batch := make([]metadata.Record, 0, 8192)
	for i := 0; i < 1_000_000; i++ {
		label := labels[i%3]
		switch {
		case i%8192 == 4095:
			label = "alert-negative-spike"
		case i%64 == 63:
			label = "eye-contact"
		}
		batch = append(batch, metadata.Record{
			Kind: metadata.KindObservation, Frame: i / 4, FrameEnd: i/4 + 1,
			Time:   time.Duration(i/4) * 40 * time.Millisecond,
			Person: i % 16, Other: -1, Label: label, Value: float64(i%1000) / 1000,
		})
		if len(batch) == cap(batch) {
			if err := r.AppendBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := r.AppendBatch(batch); err != nil {
		b.Fatal(err)
	}
	if err := r.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFollowLatency measures the append→deliver latency of a tail
// cursor (DESIGN.md §10): a follower Tails the live repository, then
// each round appends one durable record and blocks in Next until the
// CDC feed delivers it. The headline FOLLOW numbers are the p50/p99 of
// the per-round latencies (reported as p50-ns / p99-ns).
func BenchmarkFollowLatency(b *testing.B) {
	dir := b.TempDir()
	repo, err := metadata.Open(dir, metadata.WithSyncPolicy(metadata.SyncNone))
	if err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	expr, follow, err := metadata.ParseFollow("frame >= 0 FOLLOW")
	if err != nil || !follow {
		b.Fatalf("ParseFollow: %v (follow=%v)", err, follow)
	}
	cur, err := repo.Tail(expr, metadata.TailOpts{})
	if err != nil {
		b.Fatal(err)
	}
	defer cur.Close()
	ctx := context.Background()
	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		_, err := repo.Append(metadata.Record{
			Kind: metadata.KindObservation, Frame: i, FrameEnd: i + 1,
			Time:   time.Duration(i) * 40 * time.Millisecond,
			Person: i % 4, Other: -1, Label: "happy", Value: 0.9,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cur.Next(ctx); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p int) float64 {
		idx := len(lat) * p / 100
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return float64(lat[idx].Nanoseconds())
	}
	b.ReportMetric(pct(50), "p50-ns")
	b.ReportMetric(pct(99), "p99-ns")
}

// BenchmarkMetadataParse measures query compilation alone.
func BenchmarkMetadataParse(b *testing.B) {
	const q = "(label = 'sad' OR label = 'shot') AND frame < 10000 AND tag.camera != 'C2'"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metadata.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T-E: HMM baseline ---

// BenchmarkHMMBaseline measures Viterbi decoding of a 1500-frame dinner
// with the supervised Gao-et-al. baseline (experiment T-E).
func BenchmarkHMMBaseline(b *testing.B) {
	var train [][]int
	var labels [][]scene.Phase
	for seed := int64(0); seed < 2; seed++ {
		sc, err := scene.DinnerScenario(scene.DinnerOptions{Persons: 4, Frames: 1500, Seed: 10 + seed, Enjoyment: 0.6})
		if err != nil {
			b.Fatal(err)
		}
		sim, err := scene.NewSimulator(sc)
		if err != nil {
			b.Fatal(err)
		}
		syms, ph := hmm.FeaturizeScenario(sim, 0.1, seed)
		train = append(train, syms)
		labels = append(labels, ph)
	}
	model, err := hmm.FitSupervised(train, labels, hmm.DiningSymbols)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := scene.DinnerScenario(scene.DinnerOptions{Persons: 4, Frames: 1500, Seed: 99, Enjoyment: 0.6})
	if err != nil {
		b.Fatal(err)
	}
	sim, err := scene.NewSimulator(sc)
	if err != nil {
		b.Fatal(err)
	}
	syms, _ := hmm.FeaturizeScenario(sim, 0.1, 99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Viterbi(syms); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHMMBaumWelch measures one training run of the unsupervised
// baseline variant.
func BenchmarkHMMBaumWelch(b *testing.B) {
	sc, err := scene.DinnerScenario(scene.DinnerOptions{Persons: 4, Frames: 1000, Seed: 3, Enjoyment: 0.6})
	if err != nil {
		b.Fatal(err)
	}
	sim, err := scene.NewSimulator(sc)
	if err != nil {
		b.Fatal(err)
	}
	syms, _ := hmm.FeaturizeScenario(sim, 0.05, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := hmm.NewLeftRight(scene.NumPhases, hmm.DiningSymbols, 4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.BaumWelch([][]int{syms}, 5, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations (DESIGN.md design choices) ---

// BenchmarkAblationSmoothingWindow measures the multilayer analyzer at
// different temporal smoothing windows — the design knob that absorbs
// per-frame gaze flicker.
func BenchmarkAblationSmoothingWindow(b *testing.B) {
	sim := mustSim(b)
	rig := mustRig(b)
	est := gaze.NewEstimator(gaze.EstimatorOptions{Seed: 1})
	det := gaze.NewDetector()
	ids := []int{0, 1, 2, 3}
	// Pre-compute 200 frames of matrices.
	var mats []gaze.Matrix
	for f := 0; f < 200; f++ {
		obs := est.Observe(sim.FrameState(f), rig)
		m, err := det.LookAt(obs, rig, ids)
		if err != nil {
			b.Fatal(err)
		}
		mats = append(mats, m)
	}
	p, err := core.New(core.Config{Scenario: scene.PrototypeScenario()})
	if err != nil {
		b.Fatal(err)
	}
	ctx := p.Context()
	for _, window := range []int{3, 9, 25} {
		b.Run(fmt.Sprintf("window%d", window), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				an, err := layers.NewAnalyzer(ctx, layers.Options{SmoothWindow: window})
				if err != nil {
					b.Fatal(err)
				}
				for f, m := range mats {
					in := layers.FrameInput{
						Index: f, LookAt: m,
						Emotions: map[int]layers.EmotionObs{},
					}
					if err := an.Push(in); err != nil {
						b.Fatal(err)
					}
				}
				an.Finalize()
			}
		})
	}
}

// BenchmarkLookAtPartySize sweeps the party size: the eye-contact
// procedure is O(n²) per frame (the paper notes n(n−1) repetitions).
func BenchmarkLookAtPartySize(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			sc, err := scene.DinnerScenario(scene.DinnerOptions{
				Persons: n, Frames: 500, Seed: 1, Enjoyment: 0.5,
			})
			if err != nil {
				b.Fatal(err)
			}
			sim, err := scene.NewSimulator(sc)
			if err != nil {
				b.Fatal(err)
			}
			rig, err := camera.PrototypeRig(6, 5)
			if err != nil {
				b.Fatal(err)
			}
			est := gaze.NewEstimator(gaze.EstimatorOptions{Seed: 1})
			det := gaze.NewDetector()
			ids := make([]int, n)
			for i := range ids {
				ids[i] = i
			}
			obs := est.Observe(sim.FrameState(250), rig)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.LookAt(obs, rig, ids); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMetadataAggregate measures a grouped aggregation over 50k
// records (the analytical query path).
func BenchmarkMetadataAggregate(b *testing.B) {
	repo := metadata.NewMem()
	labels := []string{"happy", "sad", "neutral", "eye-contact"}
	for i := 0; i < 50000; i++ {
		if _, err := repo.Append(metadata.Record{
			Kind: metadata.KindObservation, Frame: i, FrameEnd: i + 1,
			Person: i % 4, Other: -1, Label: labels[i%4], Value: float64(i%100) / 100,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := repo.Aggregate("kind = observation", metadata.AggAvg, metadata.GroupByPerson)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("aggregation shape changed")
		}
	}
}

// BenchmarkDatasetExport measures exporting a 20-frame annotated
// dataset (footage rendering dominates).
func BenchmarkDatasetExport(b *testing.B) {
	rig, err := camera.PrototypeRig(6, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "dievent-ds-bench")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dataset.Export(dir, scene.PrototypeScenario(), rig, dataset.ExportOptions{
			MaxFrames: 20,
		}); err != nil {
			b.Fatal(err)
		}
		os.RemoveAll(dir)
	}
}
