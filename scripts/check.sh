#!/usr/bin/env sh
# check.sh — the one-command repo gate.
#
#   scripts/check.sh         vet + build + short-mode tests (fast)
#   scripts/check.sh -full   vet + build + full tier-1 test suite
#
# Both modes additionally run the metadata engine under the race
# detector (concurrent AppendBatch/QueryIter/Compact stress plus the
# compact-under-load oracle check), the torn-write recovery matrix,
# the injected-fault crash-consistency matrix (including the segment-
# statistics sidecar matrix), the statistics-pruning soundness gates
# (cold-open pushdown ≡ full-replay oracle, raced), the degraded-mode
# gates (quarantine under raced load, stage panic isolation), the
# streaming gates (finite-stream ≡ batch oracle raced on the worker
# pool, tail cursors surviving segment roll + compaction under raced
# append load, the live-FOLLOW exactly-once contract, and the
# bounded-memory check on a 24k-frame cycled stream), the dieventd
# service gates (the drain contract under active ingest, ENOSPC
# degradation instead of wedging, backpressure-policy order, and the
# mixed connection soak — scaled down under -short; the full
# ≥200-client / 1M-record shape in -full — all raced), an end-to-end
# server smoke (build the real dieventd binary, drive concurrent
# ingest+query+FOLLOW, SIGTERM it, require drain within its deadline
# and a clean offline fsck), and a short fuzz smoke of the query
# parser so the checked-in corpus executes on every check.
set -eu
cd "$(dirname "$0")/.."

# Formatting gate: the tree must be gofmt-clean.
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$UNFORMATTED" >&2
	exit 1
fi

go vet ./...
go build ./...
if [ "${1:-}" = "-full" ]; then
	# The full (non-short) suites already include the torn-write
	# recovery matrix, the raced compact-under-load stress, and the
	# full-shape service soak (≥200 concurrent clients over 1M records).
	go test ./...
	go test -race ./internal/metadata ./internal/core ./internal/face \
		./internal/service
else
	# The heavy durability tests skip under -short; run them once,
	# explicitly, so every quick check still exercises them.
	go test -short ./...
	go test -race -short ./internal/metadata
	# Crash-recovery matrix: every torn-final-write offset must reopen
	# to exactly the valid prefix.
	go test -run 'TestTornWriteRecoveryMatrix' ./internal/metadata
	# Crash-consistency matrix: every injected fault point during
	# append/roll/seal/manifest-swap/compact, crashed (with torn tails)
	# and reopened, must preserve the acknowledged prefix; transient
	# faults must surface the error and keep the store usable.
	go test -run 'TestCrashConsistencyMatrix|TestTransientFaultMatrix' ./internal/metadata
	# Statistics crash matrix: a crash at any counted op (sidecar writes
	# included) must leave a store that a writable reopen repairs to a
	# clean fsck, with cold-open pushdown matching the full-replay oracle.
	go test -run 'TestStatsCrashMatrix' ./internal/metadata
	# Pruning-soundness gate, raced: statistics pushdown and plan-time
	# segment pruning must stay byte-identical to the naive oracle.
	go test -race -run 'TestColdOpenEquivalenceProperty|TestPlanStatsPruning' ./internal/metadata
	# Degraded-mode gates, raced: quarantined segments served under
	# concurrent load, and stage panic isolation on the worker pool.
	go test -race -run 'TestQuarantineUnderConcurrentLoad' ./internal/metadata
	go test -race -run 'TestQuarantineUnderParallelExtraction|TestDegraded' ./internal/core
	# Compaction under load, raced: appends/cursors while segments merge.
	go test -race -run 'TestStressConcurrentAppendQueryCompact|TestCompactUnderLoadMatchesOracle' ./internal/metadata
	# Concurrent detection, raced: the fused matcher's thread-safety
	# gate (one shared detector hit from many goroutines), plus the
	# cascade-equivalence gate — fused multi-tier detection must stay
	# byte-identical to the exhaustive detectOracle on scenario frames
	# and synthetic edge cases.
	go test -race -run 'TestDetectConcurrentSharedDetector|TestDetectMatchesOracle' ./internal/face
	# Never-wrong-skip contracts for every reject tier (pyramid bound,
	# full cascade, flat-cell skip) and exactness of the SIMD dot kernel
	# and pyramid block sums.
	go test -run 'TestScoreCascadeSkipContract|TestPyrBoundNeverBelowNumerator|TestDotRowMatchesGeneric|TestBuildPyramidMatchesNaive' ./internal/img
	go test -run 'TestCellSkipContract' ./internal/face
	# int8 inference oracle gate: quantized top-1 labels must match the
	# float network across both synthetic generators, and the batched
	# entry points must match their per-face forms bit for bit.
	go test -run 'TestQuantizedOracleEquivalence|TestClassifyBatchMatchesClassify' ./internal/emotion
	go test -run 'TestIdentifyBatchMatchesIdentify' ./internal/face
	# Stage-graph equivalence vs the frozen monolithic oracle, raced
	# with Workers > 1 (the pixel half skips under -short; run the
	# suite explicitly so the geometric half always executes raced),
	# plus the engine's failing-sink goroutine-accounting gate.
	go test -race -run 'TestStageGraphMatchesOracle|TestRunStreamedSinkFailureStopsWorkers|TestIncremental' ./internal/core
	# Streaming gates (DESIGN.md §10), raced: tail cursors must survive
	# active-segment roll and incremental compaction under concurrent
	# append load (exactly-once, in order), query iterators must release
	# their workers on Close/cancel, and the grammar must accept FOLLOW.
	go test -race -run 'TestTailCursor|TestTailMany|TestIterCloseReleasesWorkers|TestQueryCtxCancel|TestParseFollowGrammar' ./internal/metadata
	# Finite-stream oracle identity on the worker pool plus the live
	# follower's exactly-once view while ingest and flushes race it.
	go test -race -run 'TestRunStreamMatchesRun|TestStreamFollowExactlyOnceDuringIngest|TestRunStreamCancelGraceful' ./internal/core
	# Bounded-memory gate: a 24k-frame cycled Bounded stream must hold
	# heap flat between the 8k- and 24k-frame probes (skips under
	# -short, so run it explicitly).
	go test -run 'TestStreamBoundedMemory' ./internal/core
	# Service gates (DESIGN.md §11), raced: the tail-cursor terminal
	# contracts dieventd is built on (read-only sentinel, Close/Err
	# consistency, deterministic lagging drain, overflow-policy order),
	# then the server itself — graceful drain under active ingest,
	# ENOSPC degrading a tenant to read-only instead of wedging it,
	# both backpressure policies, and the scaled-down mixed soak.
	go test -race -run 'TestTailReadOnlyEndsWithSentinel|TestTailCloseContract|TestTailLaggingDrainContract|TestTailOverflowPolicy' ./internal/metadata
	go test -race -run 'TestDrainGraceful|TestENOSPCDegradesNotWedges|TestFollowSpill|TestFollowDropLagging|TestIdleCloseReadOnlyCoexistence' ./internal/service
	go test -race -short -run 'TestServiceSoak' ./internal/service
	# End-to-end server smoke: build the real dieventd binary, run
	# concurrent ingest+query+FOLLOW against it, SIGTERM mid-traffic,
	# and require drain-within-deadline, exit 0, and a clean offline
	# fsck of every tenant store.
	go test -run 'TestDieventdEndToEnd' ./internal/service
fi
go test -run '^$' -fuzz FuzzParseQuery -fuzztime 5s ./internal/metadata
# Detection-bench regression gate: run the hot-path benchmarks several
# times, take each benchmark's best run (min-of-N is far more stable
# than a single run on a noisy 1-CPU box), and fail on a >10%
# regression against the recorded baseline
# (scripts/bench_baseline.txt — re-record when hardware changes or a
# perf PR intentionally moves the numbers). The same pass pins the
# FaceDetectShared parity fix: the engine's steady-state shared-scratch
# path must stay within ~5% of the cold path (10% gate for noise).
GATE_RAW="$(mktemp)"
trap 'rm -f "$GATE_RAW"' EXIT
go test -run '^$' -bench 'BenchmarkFaceDetect$|BenchmarkFaceDetectShared$' \
	-benchtime 300x -count 3 . > "$GATE_RAW"
go test -run '^$' -bench 'BenchmarkPipelineParallel$' \
	-benchtime 20x -count 3 . >> "$GATE_RAW"
cat "$GATE_RAW"
awk -v basef="scripts/bench_baseline.txt" '
BEGIN {
	while ((getline line < basef) > 0) {
		split(line, f, " ")
		if (f[1] ~ /^Benchmark/) base[f[1]] = f[2] + 0
	}
	close(basef)
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (!(name in best) || $3 < best[name]) best[name] = $3
}
END {
	for (name in base) {
		if (!(name in best)) {
			printf "bench gate: %s missing from benchmark output\n", name
			bad = 1
		} else if (best[name] > base[name] * 1.10) {
			printf "bench gate: %s best %.0f ns/op exceeds baseline %.0f by >10%%\n",
				name, best[name], base[name]
			bad = 1
		}
	}
	d = best["BenchmarkFaceDetect"]; s = best["BenchmarkFaceDetectShared"]
	if (d > 0 && s > d * 1.10) {
		printf "bench gate: FaceDetectShared %.0f ns/op more than 10%% over FaceDetect %.0f\n", s, d
		bad = 1
	}
	exit bad
}' "$GATE_RAW"
echo "check.sh: OK"
