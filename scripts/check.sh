#!/usr/bin/env sh
# check.sh — the one-command repo gate.
#
#   scripts/check.sh         vet + build + short-mode tests (fast)
#   scripts/check.sh -full   vet + build + full tier-1 test suite
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
if [ "${1:-}" = "-full" ]; then
	go test ./...
else
	go test -short ./...
fi
echo "check.sh: OK"
