#!/usr/bin/env sh
# check.sh — the one-command repo gate.
#
#   scripts/check.sh         vet + build + short-mode tests (fast)
#   scripts/check.sh -full   vet + build + full tier-1 test suite
#
# Both modes additionally run the metadata engine under the race
# detector (concurrent AppendBatch/QueryIter/Compact stress) and a short
# fuzz smoke of the query parser so the checked-in corpus executes on
# every check.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
if [ "${1:-}" = "-full" ]; then
	go test ./...
	go test -race ./internal/metadata ./internal/core
else
	go test -short ./...
	go test -race -short ./internal/metadata
fi
go test -run '^$' -fuzz FuzzParseQuery -fuzztime 5s ./internal/metadata
echo "check.sh: OK"
