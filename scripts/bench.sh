#!/usr/bin/env sh
# bench.sh — record the headline benchmark numbers.
#
#   scripts/bench.sh [N]      run the headline benchmarks and write
#                             BENCH_<N>.json (default N=9) at the repo
#                             root, so the perf trajectory is recorded
#                             PR over PR. Prints per-benchmark deltas
#                             against the newest previous BENCH_*.json.
#
# Headline set: the detection hot path (FaceDetect, FaceDetectShared —
# windows/s), the per-face inference hot path (FaceInferenceBatch —
# faces/s; NNForwardBatch — float vs int8 samples/s), the
# end-to-end pipelines (PipelineEndToEnd, PipelineParallel), the
# metadata ingest path (MetadataIngestSegmented), the stage-graph
# incremental re-run (PipelineIncremental vs PipelineFull610 — the
# stale-emotion re-run must land under 50% of the full run), the live
# FOLLOW subscription path (FollowLatency — append→deliver p50/p99 of
# a tail cursor over a durable repository), the
# cold-open statistics pushdown (ColdOpenQuery/pushdown vs /fullReplay
# — the pushdown open must land ≥3× under full replay; it runs in a
# separate low-count invocation because one fullReplay iteration
# replays a 1M-record store), and the dieventd service path
# (ServiceAppend — sustained appends/s through HTTP + admission +
# quota + wire decode; ServiceQueryUnderLoad — query round-trip
# p50/p99 while four ingest clients hammer the same tenant).
set -eu
cd "$(dirname "$0")/.."

N="${1:-9}"
OUT="BENCH_${N}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Baseline entries (hand-recorded "…Baseline" objects, e.g. the pre-PR4
# FaceDetect number) survive regeneration.
KEEP=""
if [ -f "$OUT" ]; then
	KEEP="$(grep 'Baseline' "$OUT" | sed 's/,$//' || true)"
fi

# Redirect (not pipe) so a benchmark failure aborts under set -e
# before the JSON is rewritten.
go test -run '^$' \
	-bench 'BenchmarkFaceDetect$|BenchmarkFaceDetectShared$|BenchmarkFaceInferenceBatch$|BenchmarkNNForwardBatch$|BenchmarkPipelineEndToEnd$|BenchmarkPipelineParallel$|BenchmarkPipelineIncremental$|BenchmarkPipelineFull610$|BenchmarkMetadataIngestSegmented$|BenchmarkFollowLatency$' \
	-benchtime 100x -count 1 . > "$RAW"
go test -run '^$' -bench 'BenchmarkColdOpenQuery' -benchtime 5x -count 1 . >> "$RAW"
go test -run '^$' \
	-bench 'BenchmarkServiceAppend$|BenchmarkServiceQueryUnderLoad$' \
	-benchtime 100x -count 1 ./internal/service >> "$RAW"
cat "$RAW"

awk -v out="$OUT" -v keep="$KEEP" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns[name] = $3
	for (i = 4; i <= NF; i++) {
		if ($(i+1) == "B/op")        bytes[name] = $i
		if ($(i+1) == "allocs/op")   allocs[name] = $i
		if ($(i+1) == "windows/s")   extra[name] = $i
		if ($(i+1) == "faces/s")     faces[name] = $i
		if ($(i+1) == "samples/s")   sps[name] = $i
		if ($(i+1) == "appends/s")   aps[name] = $i
		if ($(i+1) == "p50-ns")      p50[name] = $i
		if ($(i+1) == "p99-ns")      p99[name] = $i
	}
	order[n++] = name
}
END {
	printf "{\n" > out
	if (keep != "") {
		nk = split(keep, kept, "\n")
		for (i = 1; i <= nk; i++) printf "%s,\n", kept[i] >> out
	}
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "  \"%s\": {\"ns_per_op\": %s", name, ns[name] >> out
		if (name in bytes)  printf ", \"bytes_per_op\": %s", bytes[name] >> out
		if (name in allocs) printf ", \"allocs_per_op\": %s", allocs[name] >> out
		if (name in extra)  printf ", \"windows_per_sec\": %s", extra[name] >> out
		if (name in faces)  printf ", \"faces_per_sec\": %s", faces[name] >> out
		if (name in sps)    printf ", \"samples_per_sec\": %s", sps[name] >> out
		if (name in aps)    printf ", \"appends_per_sec\": %s", aps[name] >> out
		# The follow-latency bench predates the generic names; keep its
		# fields stable so the PR-over-PR trajectory stays diffable.
		p50k = (name ~ /Follow/) ? "follow_p50_ns" : "p50_ns"
		p99k = (name ~ /Follow/) ? "follow_p99_ns" : "p99_ns"
		if (name in p50)    printf ", \"%s\": %s", p50k, p50[name] >> out
		if (name in p99)    printf ", \"%s\": %s", p99k, p99[name] >> out
		printf "}%s\n", (i < n-1 ? "," : "") >> out
	}
	printf "}\n" >> out
}
' "$RAW"

echo "bench.sh: wrote $OUT"

# Trajectory: per-benchmark ns/op deltas against the newest previous
# BENCH_*.json, so each PR's record states what moved.
PREV=""
PN=-1
for f in BENCH_*.json; do
	[ "$f" = "$OUT" ] && continue
	num="${f#BENCH_}"
	num="${num%.json}"
	case "$num" in (*[!0-9]*) continue ;; esac
	if [ "$num" -gt "$PN" ]; then
		PN="$num"
		PREV="$f"
	fi
done
if [ -n "$PREV" ]; then
	echo "bench.sh: deltas vs $PREV"
	awk -v prevf="$PREV" -v outf="$OUT" '
	function parse(file, arr,    line, name) {
		while ((getline line < file) > 0) {
			if (match(line, /"Benchmark[^"]*"/)) {
				name = substr(line, RSTART+1, RLENGTH-2)
				if (match(line, /"ns_per_op": [0-9]+/))
					arr[name] = substr(line, RSTART+13, RLENGTH-13) + 0
			}
		}
		close(file)
	}
	BEGIN {
		parse(prevf, old); parse(outf, new)
		for (name in new)
			if (name in old && old[name] > 0)
				printf "  %-44s %12d -> %12d ns/op  (%+.1f%%)\n",
					name, old[name], new[name], (new[name] - old[name]) / old[name] * 100
	}' | sort
fi
