// Command repro regenerates every figure and table of the DiEvent paper
// (and the quantitative experiments EXPERIMENTS.md indexes), printing
// paper-expected versus measured values.
//
// Usage:
//
//	repro              # run everything
//	repro -fig 7       # one artefact: 2, 3, 4, 5, 7, 8, 9, emotion,
//	                   # ec-sweep, baseline, throughput, metadata, stages
//
// Stage-graph controls (artefact "stages"):
//
//	repro -fig stages                         # per-stage timing table
//	repro -fig stages -stages attention-span  # plug extra analyzers in
//	repro -fig stages -rederive geo-emotion   # incremental re-run demo:
//	                                          # force one stage stale and
//	                                          # re-derive only its chain
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/camera"
	"repro/internal/core"
	"repro/internal/emotion"
	"repro/internal/face"
	"repro/internal/gaze"
	"repro/internal/geom"
	"repro/internal/hmm"
	"repro/internal/img"
	"repro/internal/layers"
	"repro/internal/metadata"
	"repro/internal/parsing"
	"repro/internal/scene"
	"repro/internal/video"
)

func main() {
	fig := flag.String("fig", "", "artefact to regenerate (default: all)")
	stages := flag.String("stages", "", "comma-separated extra analyzer stages to plug into the graph (e.g. attention-span)")
	rederive := flag.String("rederive", "", "stage to force stale for the incremental re-run demo (artefact \"stages\")")
	flag.Parse()

	runners := map[string]func() error{
		"2":          fig2Rig,
		"3":          fig3Parsing,
		"4":          fig4Matrix,
		"5":          fig5Overall,
		"7":          func() error { return figLookAtMap(7, 250) },
		"8":          func() error { return figLookAtMap(8, 375) },
		"9":          fig9Summary,
		"emotion":    tableEmotion,
		"ec-sweep":   tableECSweep,
		"baseline":   tableBaseline,
		"throughput": tableThroughput,
		"metadata":   tableMetadata,
		"speaker":    tableSpeaker,
		"stages":     func() error { return tableStages(*stages, *rederive) },
	}
	order := []string{"2", "3", "4", "5", "7", "8", "9",
		"emotion", "ec-sweep", "baseline", "speaker", "throughput", "metadata", "stages"}

	if *fig != "" {
		run, ok := runners[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown artefact %q; choose one of %s\n",
				*fig, strings.Join(order, ", "))
			os.Exit(2)
		}
		if err := run(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	for _, name := range order {
		if err := runners[name](); err != nil {
			fmt.Fprintf(os.Stderr, "artefact %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

// fig2Rig validates the Fig. 2 acquisition schema.
func fig2Rig() error {
	header("Fig. 2 — acquisition platform (2 cameras, 2.5 m, −15° pitch, 25 fps, 640×480)")
	rig, err := camera.PaperRig(4)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-24s %-14s %-10s\n", "camera", "position (m)", "pitch (deg)", "sees table")
	for _, c := range rig.Cameras {
		fwd := c.Pose.Forward()
		pitch := -asinDeg(fwd.Z)
		fmt.Printf("%-8s %-24v %-14.1f %-10v\n",
			c.Name, c.Pose.Position, pitch, c.Sees(geom.V3(0, 0, 0.75)))
	}
	fmt.Printf("frame rate: %.0f fps   resolution: %dx%d\n",
		rig.FPS, rig.Cameras[0].In.W, rig.Cameras[0].In.H)
	fmt.Println("paper: cameras at 2.5 m, −15° pitch, facing each other — matched")
	return nil
}

// fig3Parsing reproduces the Fig. 3 hierarchy: a composed multi-shot
// video decomposed into scenes, shots and key frames.
func fig3Parsing() error {
	header("Fig. 3 — video parsing hierarchy (video → scene → shot → key frame)")
	sim, err := scene.NewSimulator(scene.PrototypeScenario())
	if err != nil {
		return err
	}
	rig, err := camera.PrototypeRig(6, 5)
	if err != nil {
		return err
	}
	opt := video.RenderOptions{NoiseSigma: 1.5}
	mk := func(cam, from, to int) (video.Source, error) {
		return video.NewSourceRange(video.NewRenderer(sim, rig.Cameras[cam], opt), from, to)
	}
	s0, err := mk(0, 0, 200)
	if err != nil {
		return err
	}
	s1, err := mk(2, 0, 200)
	if err != nil {
		return err
	}
	s2, err := mk(1, 0, 120)
	if err != nil {
		return err
	}
	comp, err := video.Compose([]video.Source{s0, s1, s2}, []video.Shot{
		{Source: 0, Len: 60},
		{Source: 1, Len: 50, TransitionIn: video.Cut},
		{Source: 2, Len: 45, TransitionIn: video.Cut},
		{Source: 0, Len: 60, TransitionIn: video.Dissolve},
	})
	if err != nil {
		return err
	}
	p, err := parsing.NewAnalyzer(parsing.Options{}).Analyze(comp.Source())
	if err != nil {
		return err
	}
	m := parsing.Evaluate(p.Boundaries, comp.TrueBoundaries(), 6)
	fmt.Printf("true boundaries: %v (last is a %d-frame dissolve)\n",
		comp.TrueBoundaries(), video.DissolveLen)
	fmt.Printf("detected: ")
	for _, b := range p.Boundaries {
		kind := "cut"
		if b.Gradual {
			kind = "dissolve"
		}
		fmt.Printf("%d(%s) ", b.Frame, kind)
	}
	fmt.Println()
	fmt.Printf("precision %.2f  recall %.2f  F1 %.2f\n", m.Precision, m.Recall, m.F1)
	fmt.Printf("hierarchy: %d frames → %d scenes → %d shots, key frames ", p.NumFrames, len(p.Scenes), len(p.Shots))
	for _, s := range p.Shots {
		fmt.Printf("%d ", s.KeyFrame)
	}
	fmt.Println()
	return nil
}

// fig4Matrix prints a per-frame look-at matrix like Fig. 4.
func fig4Matrix() error {
	header("Fig. 4 — per-frame look-at (gaze) matrix, 4 persons")
	sim, rig, ids, err := protoSetup()
	if err != nil {
		return err
	}
	est := gaze.NewEstimator(gaze.EstimatorOptions{Seed: 20180416})
	det := gaze.NewDetector()
	fs := sim.FrameState(250)
	obs := est.Observe(fs, rig)
	m, err := det.LookAt(obs, rig, ids)
	if err != nil {
		return err
	}
	printMatrix(m)
	fmt.Printf("eye contact pairs (M[x][y]=M[y][x]=1): %v\n", pairNames(m.EyeContactPairs()))
	fmt.Println("paper: example matrix with one mutual pair — matched (P1↔P3)")
	return nil
}

// fig5Overall prints the Fig. 5 overall-emotion estimation for a happy
// and an unhappy dinner.
func fig5Overall() error {
	header("Fig. 5 — overall emotion estimation (OH = overall happiness %)")
	for _, enjoy := range []float64{0.9, 0.2} {
		sc, err := scene.DinnerScenario(scene.DinnerOptions{
			Persons: 4, Frames: 1500, Seed: 5, Enjoyment: enjoy,
		})
		if err != nil {
			return err
		}
		p, err := core.New(core.Config{Scenario: sc, Mode: core.GeometricVision,
			Gaze: gaze.EstimatorOptions{Seed: 5}})
		if err != nil {
			return err
		}
		res, err := p.Run()
		if err != nil {
			return err
		}
		fmt.Printf("dinner enjoyment=%.1f → mean OH %.1f%%  satisfaction %.1f/100  (%d EC events, %d alerts)\n",
			enjoy, res.Layers.MeanOH(), res.Layers.SatisfactionScore(),
			len(res.Layers.Events), len(res.Layers.Alerts))
		res.Repo.Close()
	}
	fmt.Println("paper: OH fuses per-person emotion with participant count — higher for the enjoyable dinner")
	return nil
}

// figLookAtMap reproduces Fig. 7 (t=10 s) or Fig. 8 (t=15 s): the look-at
// top-view map from four synchronized cameras.
func figLookAtMap(figNo, frame int) error {
	header(fmt.Sprintf("Fig. %d — look-at top-view map at t = %d s (frame %d, 4 cameras)",
		figNo, frame/25, frame))
	sim, rig, ids, err := protoSetup()
	if err != nil {
		return err
	}
	est := gaze.NewEstimator(gaze.EstimatorOptions{Seed: 20180416})
	det := gaze.NewDetector()
	// Temporal majority over ±5 frames, as the pipeline's smoothing
	// layer does.
	votes := gaze.NewSummary(ids)
	for f := frame - 5; f <= frame+5; f++ {
		obs := est.Observe(sim.FrameState(f), rig)
		m, err := det.LookAt(obs, rig, ids)
		if err != nil {
			return err
		}
		if err := votes.Add(m); err != nil {
			return err
		}
	}
	maj := gaze.NewMatrix(ids)
	for i := range ids {
		for j := range ids {
			if votes.Counts[i][j]*2 > votes.Frames {
				maj.M[i][j] = 1
			}
		}
	}
	printTopView(sim, maj)
	printMatrix(maj)
	fmt.Printf("directed edges: %v\n", pairNames(maj.Edges()))
	fmt.Printf("eye contact: %v\n", pairNames(maj.EyeContactPairs()))
	switch figNo {
	case 7:
		fmt.Println("paper: green↔yellow mutual; black→blue; blue→green")
	case 8:
		fmt.Println("paper: green, blue and black all look at yellow")
	}
	return nil
}

// fig9Summary reproduces the Fig. 9 look-at summary matrix over all 610
// frames, both ground truth and as measured by the pipeline.
func fig9Summary() error {
	header("Fig. 9 — look-at matrix summary over 610 frames")
	sim, _, _, err := protoSetup()
	if err != nil {
		return err
	}
	truth := sim.TrueSummary()
	fmt.Println("ground truth (scripted):")
	printIntMatrix(truth)

	p, err := core.New(core.Config{
		Scenario: scene.PrototypeScenario(),
		Mode:     core.GeometricVision,
		Gaze:     gaze.EstimatorOptions{Seed: 20180416},
	})
	if err != nil {
		return err
	}
	res, err := p.Run()
	if err != nil {
		return err
	}
	defer res.Repo.Close()
	fmt.Println("measured, raw per-frame matrices (noisy estimators):")
	fmt.Print(res.Layers.Summary.String())
	fmt.Println("measured, temporally smoothed layer:")
	fmt.Print(res.Layers.SmoothedSummary.String())
	fmt.Printf("paper: P1→P3 = 357; zero diagonal; P1 column sum maximal (dominant)\n")
	fmt.Printf("truth: P1→P3 = %d   raw: %d   smoothed: %d   dominant = P%d\n",
		truth[0][2], res.Layers.Summary.Counts[0][2],
		res.Layers.SmoothedSummary.Counts[0][2], res.Layers.Summary.Dominant()+1)
	return nil
}

// tableEmotion reports the LBP+NN emotion classifier (experiment T-A).
func tableEmotion() error {
	header("T-A — emotion recognition (LBP features + neural network)")
	ds := emotion.GenerateDataset(40, 1)
	train, test := ds.Split(0.25)
	clf, err := emotion.NewClassifier(48, 2)
	if err != nil {
		return err
	}
	start := time.Now()
	if _, err := clf.Train(train, emotion.TrainOptions{Epochs: 60, Seed: 3, LearningRate: 0.01}); err != nil {
		return err
	}
	fmt.Printf("trained on %d faces in %v\n", len(train.Faces), time.Since(start).Round(time.Millisecond))
	m, err := clf.Evaluate(test)
	if err != nil {
		return err
	}
	fmt.Printf("held-out accuracy: %.3f over %d faces\n", m.Accuracy(), len(test.Faces))
	fmt.Println(m)
	return nil
}

// tableECSweep ablates gaze noise and sphere radius (experiment T-B).
func tableECSweep() error {
	header("T-B — eye-contact detection vs gaze noise and head-sphere radius")
	sim, rig, ids, err := protoSetup()
	if err != nil {
		return err
	}
	fmt.Printf("%-12s", "noise\\scale")
	scales := []float64{0.5, 1.0, 1.5, 2.0, 3.0}
	for _, s := range scales {
		fmt.Printf("%8.1f", s)
	}
	fmt.Println("   (per-frame edge F1 over 100 frames)")
	for _, noiseDeg := range []float64{0, 2, 4, 6, 8} {
		fmt.Printf("%-12.0f", noiseDeg)
		for _, scale := range scales {
			est := gaze.NewEstimator(gaze.EstimatorOptions{
				Seed: 1, GazeNoiseDeg: noiseDeg, PosNoise: 0.02,
			})
			if noiseDeg == 0 {
				est = gaze.NewEstimator(gaze.NoNoise())
			}
			det := &gaze.Detector{RadiusScale: scale}
			tp, fp, fn := 0, 0, 0
			for f := 100; f < 200; f++ {
				fs := sim.FrameState(f)
				obs := est.Observe(fs, rig)
				m, err := det.LookAt(obs, rig, ids)
				if err != nil {
					return err
				}
				truth := fs.TrueLookAt()
				for i := range ids {
					for j := range ids {
						switch {
						case m.M[i][j] == 1 && truth[i][j] == 1:
							tp++
						case m.M[i][j] == 1 && truth[i][j] == 0:
							fp++
						case m.M[i][j] == 0 && truth[i][j] == 1:
							fn++
						}
					}
				}
			}
			f1 := 0.0
			if 2*tp+fp+fn > 0 {
				f1 = 2 * float64(tp) / float64(2*tp+fp+fn)
			}
			fmt.Printf("%8.3f", f1)
		}
		fmt.Println()
	}
	fmt.Println("expected shape: F1 degrades with noise; mid radius scales dominate under noise")

	// Multi-camera fusion ablation: one observation from the best view
	// versus all visible cameras with confidence-based selection.
	fmt.Println("\ncamera-fusion ablation (noise 6°, scale 2.0, F1 over 100 frames):")
	for _, all := range []bool{false, true} {
		est := gaze.NewEstimator(gaze.EstimatorOptions{
			Seed: 1, GazeNoiseDeg: 6, PosNoise: 0.02, AllCameras: all,
		})
		det := gaze.NewDetector()
		tp, fp, fn := 0, 0, 0
		for f := 100; f < 200; f++ {
			fs := sim.FrameState(f)
			obs := est.Observe(fs, rig)
			m, err := det.LookAt(obs, rig, ids)
			if err != nil {
				return err
			}
			truth := fs.TrueLookAt()
			for i := range ids {
				for j := range ids {
					switch {
					case m.M[i][j] == 1 && truth[i][j] == 1:
						tp++
					case m.M[i][j] == 1 && truth[i][j] == 0:
						fp++
					case m.M[i][j] == 0 && truth[i][j] == 1:
						fn++
					}
				}
			}
		}
		f1 := 0.0
		if 2*tp+fp+fn > 0 {
			f1 = 2 * float64(tp) / float64(2*tp+fp+fn)
		}
		mode := "best view only"
		if all {
			mode = "all cameras (confidence-fused)"
		}
		fmt.Printf("  %-32s F1 %.3f\n", mode, f1)
	}
	return nil
}

// tableBaseline compares DiEvent's multilayer segmentation against the
// Gao et al. HMM baseline (experiment T-E) under increasingly severe
// bursty gaze-layer failure — the paper's multilayer claim is that
// additional information sources "reduce the ratio of total failure".
func tableBaseline() error {
	header("T-E — dining-activity segmentation under gaze-layer failure: multilayer vs HMM baseline (Gao et al.)")
	fmt.Printf("%-26s %-20s %-20s\n", "gaze blackout (per-frame", "baseline (single-", "DiEvent multilayer")
	fmt.Printf("%-26s %-20s %-20s\n", "start prob, 6 s bursts)", "layer) accuracy", "accuracy")
	for _, burst := range []float64{0, 0.01, 0.02, 0.04} {
		bm := hmm.BurstModel{PerFrameStart: burst, Len: 150}
		var trainBase, trainMulti [][]int
		var labels [][]scene.Phase
		for seed := int64(0); seed < 10; seed++ {
			sc, err := scene.DinnerScenario(scene.DinnerOptions{Persons: 4, Frames: 1500, Seed: 10 + seed, Enjoyment: 0.6})
			if err != nil {
				return err
			}
			sim, err := scene.NewSimulator(sc)
			if err != nil {
				return err
			}
			b, mu, ph := hmm.FeaturizeScenarioBursty(sim, bm, seed)
			trainBase = append(trainBase, b)
			trainMulti = append(trainMulti, mu)
			labels = append(labels, ph)
		}
		base, err := hmm.FitSupervised(trainBase, labels, hmm.DiningSymbols)
		if err != nil {
			return err
		}
		multi, err := hmm.FitSupervised(trainMulti, labels, hmm.MultilayerSymbols)
		if err != nil {
			return err
		}
		var sumB, sumM float64
		const trials = 8
		for seed := int64(100); seed < 100+trials; seed++ {
			sc, err := scene.DinnerScenario(scene.DinnerOptions{Persons: 4, Frames: 1500, Seed: seed, Enjoyment: 0.6})
			if err != nil {
				return err
			}
			sim, err := scene.NewSimulator(sc)
			if err != nil {
				return err
			}
			symsB, symsM, truth := hmm.FeaturizeScenarioBursty(sim, bm, seed)
			accOf := func(h *hmm.HMM, syms []int) (float64, error) {
				states, err := h.Viterbi(syms)
				if err != nil {
					return 0, err
				}
				pred := make([]scene.Phase, len(states))
				for i, s := range states {
					pred[i] = scene.Phase(s)
				}
				return hmm.PhaseAccuracy(pred, truth), nil
			}
			accB, err := accOf(base, symsB)
			if err != nil {
				return err
			}
			accM, err := accOf(multi, symsM)
			if err != nil {
				return err
			}
			sumB += accB
			sumM += accM
		}
		fmt.Printf("%-26.2f %-20.3f %-20.3f\n", burst, sumB/trials, sumM/trials)
	}
	fmt.Println("expected shape: parity when clean; multilayer degrades more gracefully as the gaze layer fails")
	return nil
}

// tableThroughput reports per-stage pipeline timing (experiment T-C).
func tableThroughput() error {
	header("T-C — pipeline throughput per stage (610-frame prototype, geometric vision)")
	p, err := core.New(core.Config{
		Scenario: scene.PrototypeScenario(),
		Mode:     core.GeometricVision,
		Gaze:     gaze.EstimatorOptions{Seed: 1},
	})
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := p.Run()
	if err != nil {
		return err
	}
	defer res.Repo.Close()
	total := time.Since(start)
	fmt.Printf("%-20s %-14s %-12s\n", "stage", "wall time", "µs/frame")
	for _, st := range res.Timings {
		fmt.Printf("%-20s %-14v %-12.1f\n", st.Name, st.Duration.Round(time.Microsecond),
			float64(st.Duration.Microseconds())/float64(res.FramesAnalyzed))
	}
	fps := float64(res.FramesAnalyzed) / total.Seconds()
	fmt.Printf("end-to-end: %v for %d frames → %.0f fps (capture is 25 fps: %.0fx real time)\n",
		total.Round(time.Millisecond), res.FramesAnalyzed, fps, fps/25)

	// Pixel-vision throughput on a short prefix.
	pp, err := core.New(core.Config{
		Scenario:  scene.PrototypeScenario(),
		Mode:      core.PixelVision,
		Gaze:      gaze.EstimatorOptions{Seed: 1},
		MaxFrames: 50,
	})
	if err != nil {
		return err
	}
	start = time.Now()
	pres, err := pp.Run()
	if err != nil {
		return err
	}
	defer pres.Repo.Close()
	ptotal := time.Since(start)
	fmt.Printf("pixel vision: %v for %d frames → %.1f fps\n",
		ptotal.Round(time.Millisecond), pres.FramesAnalyzed,
		float64(pres.FramesAnalyzed)/ptotal.Seconds())

	// Raw detection throughput on the fused template-matching engine
	// (DESIGN.md §6): full-frame multi-scale scans of one rendered
	// prototype frame.
	sim, rig, _, err := protoSetup()
	if err != nil {
		return err
	}
	frame := video.NewRenderer(sim, rig.Cameras[0], video.RenderOptions{}).Render(250).Pixels
	det, err := face.NewDetector(face.DetectorOptions{})
	if err != nil {
		return err
	}
	const runs = 50
	start = time.Now()
	for i := 0; i < runs; i++ {
		det.Detect(frame)
	}
	dtotal := time.Since(start)
	perFrame := dtotal / runs
	windows := det.GridWindows(frame.W, frame.H)
	fmt.Printf("detection: %d coarse windows/frame in %v → %.2fM windows/s, %.1f detection frames/s\n",
		windows, perFrame.Round(time.Microsecond),
		float64(windows)/perFrame.Seconds()/1e6,
		float64(runs)/dtotal.Seconds())

	// Per-face inference throughput on the batched paths (DESIGN.md
	// §12): batched identity + batched emotion classification over an
	// 8-face frame, the classify stage's steady-state shape.
	clf, err := emotion.NewClassifier(48, 1)
	if err != nil {
		return err
	}
	if _, err := clf.Train(emotion.GenerateDataset(10, 1),
		emotion.TrainOptions{Epochs: 5, Seed: 2, LearningRate: 0.01}); err != nil {
		return err
	}
	rec := face.NewRecognizer()
	var crops []*img.Gray
	for p := 0; p < 4; p++ {
		for v := uint64(0); v < 2; v++ {
			crop := emotion.GenerateFace(emotion.Neutral, uint64(p)*8+v, uint8(100+30*p))
			if err := rec.Enroll(fmt.Sprintf("P%d", p), crop); err != nil {
				return err
			}
			crops = append(crops, crop)
		}
	}
	var ids []string
	var sims []float64
	var labels []emotion.Label
	var confs []float64
	const faceRuns = 100
	start = time.Now()
	for i := 0; i < faceRuns; i++ {
		ids, sims = rec.IdentifyBatch(crops, ids, sims)
		if labels, confs, err = clf.ClassifyBatch(crops, labels, confs); err != nil {
			return err
		}
	}
	ftotal := time.Since(start)
	fmt.Printf("face inference: %d faces/frame (identify + classify, batched) in %v/frame → %.0f faces/s\n",
		len(crops), (ftotal / faceRuns).Round(time.Microsecond),
		float64(len(crops)*faceRuns)/ftotal.Seconds())
	return nil
}

// tableMetadata reports repository ingest and query metrics (T-D).
func tableMetadata() error {
	header("T-D — metadata repository: ingest rate and query latency")
	dir, err := os.MkdirTemp("", "dievent-meta")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	repo, err := metadata.Open(dir)
	if err != nil {
		return err
	}
	defer repo.Close()

	const n = 50000
	labelsList := []string{"happy", "sad", "neutral", "eye-contact", "shot"}
	start := time.Now()
	for i := 0; i < n; i++ {
		_, err := repo.Append(metadata.Record{
			Kind: metadata.KindObservation, Frame: i, FrameEnd: i + 1,
			Time:   time.Duration(i) * 40 * time.Millisecond,
			Person: i % 4, Other: -1,
			Label: labelsList[i%len(labelsList)], Value: float64(i%100) / 100,
		})
		if err != nil {
			return err
		}
	}
	if err := repo.Sync(); err != nil {
		return err
	}
	ingest := time.Since(start)
	fmt.Printf("ingest: %d records in %v → %.0f records/s (durable log + indexes)\n",
		n, ingest.Round(time.Millisecond), float64(n)/ingest.Seconds())

	queries := []string{
		"label = 'eye-contact'",
		"label = 'happy' AND person = 2 AND frame >= 25000",
		"kind = observation AND value > 0.95",
		"(label = 'sad' OR label = 'shot') AND frame < 10000",
	}
	for _, q := range queries {
		start := time.Now()
		recs, err := repo.Query(q)
		if err != nil {
			return err
		}
		fmt.Printf("query %-55q → %6d rows in %v\n", q, len(recs),
			time.Since(start).Round(time.Microsecond))
	}

	h, err := repo.Health()
	if err != nil {
		return err
	}
	switch {
	case h.Degraded:
		fmt.Printf("health: DEGRADED — %d quarantined segment(s), write fault %v, dir-sync pending %v\n",
			len(h.Quarantined), h.WriteFault, h.PendingDirSync)
	default:
		fmt.Println("health: ok (no quarantined segments, no pending fault repairs)")
	}
	for _, act := range h.Recovery {
		fmt.Printf("  recovery: %s\n", act)
	}
	return nil
}

// tableStages surfaces the stage graph (DESIGN.md §7): the resolved
// stage list, the per-stage timing table from the pipeline's stage
// timer, and — with -rederive — an incremental re-run that forces one
// stage stale and replays every fresh raw layer from the first run's
// repository.
func tableStages(extraStages, rederive string) error {
	header("Stage graph — resolved stages, per-stage timing, incremental re-derivation")
	cfg := core.Config{
		Scenario:    scene.PrototypeScenario(),
		Mode:        core.GeometricVision,
		Gaze:        gaze.EstimatorOptions{Seed: 1},
		Incremental: true,
	}
	if extraStages != "" {
		for _, s := range strings.Split(extraStages, ",") {
			if s = strings.TrimSpace(s); s != "" {
				cfg.Stages = append(cfg.Stages, s)
			}
		}
	}
	p, err := core.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("graph (%s vision): %s\n", cfg.Mode, strings.Join(p.StageNames(), " → "))

	start := time.Now()
	res, err := p.Run()
	if err != nil {
		return err
	}
	defer res.Repo.Close()
	fullWall := time.Since(start)
	fmt.Printf("\nfull run: %v for %d frames\n", fullWall.Round(time.Millisecond), res.FramesAnalyzed)
	printTimings(res.Timings, res.FramesAnalyzed)
	if res.Attention != nil {
		fmt.Println("attention spans (pluggable analyzer):")
		for _, st := range res.Attention.Stats {
			if st.Spans == 0 {
				continue
			}
			fmt.Printf("  P%d: %d fixations, mean %.0f frames, longest %d\n",
				st.Person+1, st.Spans, st.MeanFrames, st.LongestFrames)
		}
	}

	if rederive == "" {
		fmt.Println("hint: -rederive geo-emotion re-runs only the emotion chain against this run's manifest")
		return nil
	}

	start = time.Now()
	inc, err := p.RunIncremental(res.Repo, rederive)
	if err != nil {
		return err
	}
	defer inc.Repo.Close()
	incWall := time.Since(start)
	fmt.Printf("\nincremental re-run (-rederive %s): %v  (%.0f%% of the full run)\n",
		rederive, incWall.Round(time.Millisecond), 100*incWall.Seconds()/fullWall.Seconds())
	fmt.Printf("  stale:  %s\n", strings.Join(inc.StaleStages, ", "))
	fmt.Printf("  reused: %s (replayed from the repository — no re-extraction)\n",
		strings.Join(inc.ReusedStages, ", "))
	printTimings(inc.Timings, inc.FramesAnalyzed)
	fmt.Printf("records: full %d, incremental %d (byte-identical layers)\n",
		res.Repo.Len(), inc.Repo.Len())
	return nil
}

// printTimings renders a stage-timer report grouped by stage name.
func printTimings(timings []core.StageTiming, frames int) {
	fmt.Printf("%-20s %-14s %-12s\n", "stage", "time", "µs/frame")
	for _, st := range timings {
		fmt.Printf("%-20s %-14v %-12.1f\n", st.Name, st.Duration.Round(time.Microsecond),
			float64(st.Duration.Microseconds())/float64(frames))
	}
}

// --- shared helpers ---

func protoSetup() (*scene.Simulator, *camera.Rig, []int, error) {
	sim, err := scene.NewSimulator(scene.PrototypeScenario())
	if err != nil {
		return nil, nil, nil, err
	}
	rig, err := camera.PrototypeRig(6, 5)
	if err != nil {
		return nil, nil, nil, err
	}
	return sim, rig, []int{0, 1, 2, 3}, nil
}

var protoColors = map[int]string{0: "yellow", 1: "blue", 2: "green", 3: "black"}

func printMatrix(m gaze.Matrix) {
	fmt.Printf("%8s", "")
	for _, id := range m.IDs {
		fmt.Printf("%8s", fmt.Sprintf("P%d", id+1))
	}
	fmt.Println()
	for i, id := range m.IDs {
		fmt.Printf("%8s", fmt.Sprintf("P%d", id+1))
		for j := range m.IDs {
			fmt.Printf("%8d", m.M[i][j])
		}
		fmt.Printf("   (%s)\n", protoColors[id])
	}
}

func printIntMatrix(m [][]int) {
	fmt.Printf("%8s", "")
	for j := range m {
		fmt.Printf("%8s", fmt.Sprintf("P%d", j+1))
	}
	fmt.Println()
	for i := range m {
		fmt.Printf("%8s", fmt.Sprintf("P%d", i+1))
		for j := range m[i] {
			fmt.Printf("%8d", m[i][j])
		}
		fmt.Println()
	}
}

// printTopView draws an ASCII top-view map of the table with look-at
// arrows, echoing the paper's Fig. 7/8 visualisation.
func printTopView(sim *scene.Simulator, m gaze.Matrix) {
	fmt.Println("top view (table centre at +; arrows list who looks at whom):")
	persons := sim.Persons()
	// 2-D layout: seats normalised to a 33x11 character canvas.
	const W, H = 37, 11
	canvas := make([][]byte, H)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", W))
	}
	canvas[H/2][W/2] = '+'
	for _, p := range persons {
		x := int((p.Seat.X/1.6 + 1) / 2 * float64(W-4))
		y := int((p.Seat.Y/1.2 + 1) / 2 * float64(H-1))
		if y < 0 {
			y = 0
		}
		if y >= H {
			y = H - 1
		}
		label := fmt.Sprintf("P%d", p.ID+1)
		for k, c := range []byte(label) {
			if x+k < W {
				canvas[y][x+k] = c
			}
		}
	}
	for _, row := range canvas {
		fmt.Println(string(row))
	}
	for i, from := range m.IDs {
		for j, to := range m.IDs {
			if m.M[i][j] == 1 {
				fmt.Printf("  P%d(%s) → P%d(%s)\n", from+1, protoColors[from], to+1, protoColors[to])
			}
		}
	}
}

func pairNames(pairs [][2]int) string {
	if len(pairs) == 0 {
		return "none"
	}
	var parts []string
	for _, p := range pairs {
		parts = append(parts, fmt.Sprintf("P%d(%s)-P%d(%s)",
			p[0]+1, protoColors[p[0]], p[1]+1, protoColors[p[1]]))
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

func asinDeg(x float64) float64 {
	if x > 1 {
		x = 1
	}
	if x < -1 {
		x = -1
	}
	return math.Asin(x) * 180 / math.Pi
}

// tableSpeaker evaluates gaze-based speaker inference (experiment T-F):
// the multilayer analyzer reads the participant drawing majority gaze as
// holding the floor and is scored against the dinner scripts' speaker
// ground truth during conversation phases.
func tableSpeaker() error {
	header("T-F — speaker inference from received gaze (conversation phases)")
	fmt.Printf("%-8s %-12s %-12s\n", "dinner", "accuracy", "chance")
	var sum float64
	const trials = 5
	for seed := int64(30); seed < 30+trials; seed++ {
		sc, err := scene.DinnerScenario(scene.DinnerOptions{
			Persons: 4, Frames: 2000, Seed: seed, Enjoyment: 0.6,
		})
		if err != nil {
			return err
		}
		p, err := core.New(core.Config{
			Scenario: sc, Mode: core.GeometricVision,
			Gaze: gaze.EstimatorOptions{Seed: seed},
		})
		if err != nil {
			return err
		}
		res, err := p.Run()
		if err != nil {
			return err
		}
		sim, err := scene.NewSimulator(sc)
		if err != nil {
			res.Repo.Close()
			return err
		}
		truth := make([]int, res.FramesAnalyzed)
		for i := range truth {
			fs := sim.FrameState(i)
			truth[i] = -1
			if fs.Phase != scene.PhaseTalking && fs.Phase != scene.PhaseOrdering {
				continue
			}
			for _, ps := range fs.Persons {
				if ps.Speaking {
					truth[i] = ps.ID
				}
			}
		}
		acc := layers.SpeakerAccuracy(res.Layers.InferredSpeakers, truth)
		res.Repo.Close()
		sum += acc
		fmt.Printf("%-8d %-12.3f %-12.3f\n", seed, acc, 0.25)
	}
	fmt.Printf("%-8s %-12.3f\n", "mean", sum/trials)
	fmt.Println("expected shape: far above the 4-person chance rate of 0.25")
	return nil
}
