// Command dievent runs the full DiEvent pipeline on a named scenario and
// prints the multilayer analysis digest: the look-at summary, dominance,
// overall-emotion statistics, eye-contact events and alerts.
//
// Usage:
//
//	dievent [flags]
//
//	-scenario prototype|dinner   event to analyse (default prototype)
//	-persons N                   dinner party size (default 4)
//	-frames N                    dinner length in frames (default 1500)
//	-enjoyment F                 dinner enjoyment bias in [0,1] (default 0.7)
//	-mode geometric|pixel        vision path (default geometric)
//	-max N                       analyse only the first N frames
//	-repo DIR                    persist the metadata repository to DIR
//	-segbytes N                  repository segment roll threshold in bytes
//	-seed N                      estimator noise seed
//	-stream N                    run as an online stream of N frames (cycling
//	                             the scenario past its end) instead of a batch
//	-follow QUERY                with -stream: subscribe to the live record
//	                             feed and print matches while ingesting
//
// Streaming mode (DESIGN.md §10) runs the pipeline as an online process
// with the live stages enabled (dining-phase, live-summary,
// attention-span): windowed operators emit live- records mid-stream,
// and -follow tails them from the very repository the run is still
// writing — e.g.
//
//	dievent -stream 5000 -follow "label = 'live-phase' FOLLOW"
//
// Ctrl-C winds the stream down at the next frame boundary and the
// partial result is finalized and printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/dievent"
)

func main() {
	var (
		scenario  = flag.String("scenario", "prototype", "prototype or dinner")
		persons   = flag.Int("persons", 4, "dinner party size")
		frames    = flag.Int("frames", 1500, "dinner length in frames")
		enjoyment = flag.Float64("enjoyment", 0.7, "dinner enjoyment in [0,1]")
		mode      = flag.String("mode", "geometric", "geometric or pixel")
		maxFrames = flag.Int("max", 0, "truncate the event to N frames (0 = all)")
		repoDir   = flag.String("repo", "", "persist metadata repository to this directory")
		segBytes  = flag.Int64("segbytes", 0, "repository segment roll threshold in bytes (0 = default)")
		seed      = flag.Int64("seed", 1, "noise seed")
		stream    = flag.Int("stream", 0, "run as an online stream of N frames (0 = batch run)")
		follow    = flag.String("follow", "", "with -stream: tail this query live while ingesting")
	)
	flag.Parse()

	cfg := dievent.Config{
		MaxFrames: *maxFrames,
		RepoDir:   *repoDir,
		Gaze:      dievent.GazeOptions{Seed: *seed},
	}
	if *segBytes > 0 {
		cfg.RepoOptions = append(cfg.RepoOptions, dievent.WithSegmentSize(*segBytes))
	}
	switch *scenario {
	case "prototype":
		cfg.Scenario = dievent.PrototypeScenario()
	case "dinner":
		sc, err := dievent.DinnerScenario(dievent.DinnerOptions{
			Persons: *persons, Frames: *frames, Seed: *seed, Enjoyment: *enjoyment,
		})
		if err != nil {
			fatal(err)
		}
		cfg.Scenario = sc
	default:
		fatal(fmt.Errorf("unknown scenario %q", *scenario))
	}
	switch *mode {
	case "geometric":
		cfg.Mode = dievent.GeometricVision
	case "pixel":
		cfg.Mode = dievent.PixelVision
		if cfg.MaxFrames == 0 {
			cfg.MaxFrames = 100 // pixel vision is priced per frame
			fmt.Fprintln(os.Stderr, "note: pixel mode capped at 100 frames; raise with -max")
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	if *follow != "" && *stream == 0 {
		fatal(fmt.Errorf("-follow needs -stream (a batch run has no live feed)"))
	}
	if *stream > 0 {
		runStreaming(cfg, *stream, *follow, *mode)
		return
	}

	pipe, err := dievent.New(cfg)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res, err := pipe.Run()
	if err != nil {
		fatal(err)
	}
	defer res.Repo.Close()

	fmt.Println(res.Summary.Digest)
	fmt.Printf("alerts:\n")
	for _, a := range res.Layers.Alerts {
		fmt.Printf("  [%7v] %-16s %s\n", a.Time.Round(40*time.Millisecond), a.Kind, a.Detail)
	}
	fmt.Printf("\npipeline: %d frames in %v (%s vision)\n",
		res.FramesAnalyzed, time.Since(start).Round(time.Millisecond), *mode)
	for _, st := range res.Timings {
		fmt.Printf("  %-20s %v\n", st.Name, st.Duration.Round(time.Microsecond))
	}
	if *repoDir != "" {
		fmt.Printf("metadata repository: %d records in %s\n", res.Repo.Len(), *repoDir)
	}
}

// runStreaming drives the online mode: the pipeline ingests frames
// (cycling the scenario when frames exceeds it) into a repository the
// main goroutine can Tail concurrently. The live stages are enabled so
// the stream emits live-phase / live-summary / attention-span records;
// past the scenario's end the run is bounded so memory stays flat no
// matter how long the stream.
func runStreaming(cfg dievent.Config, frames int, follow, mode string) {
	cfg.Stages = append(cfg.Stages,
		dievent.StageAttention, dievent.StageDiningPhase, dievent.StageLiveSummary)
	// The stream owns its repository handle so a follower can share it;
	// -repo persists it, otherwise it lives in memory.
	var repo *dievent.Repository
	var err error
	if cfg.RepoDir != "" {
		repo, err = dievent.OpenRepository(cfg.RepoDir, cfg.RepoOptions...)
		if err != nil {
			fatal(err)
		}
		cfg.RepoDir = ""
	} else {
		repo = dievent.NewMemRepository()
	}
	defer repo.Close()

	pipe, err := dievent.New(cfg)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	unbounded := frames > cfg.Scenario.NumFrames
	start := time.Now()
	var res *dievent.Result
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, runErr = pipe.RunStream(dievent.StreamOptions{
			Ctx: ctx, Frames: frames, Cycle: unbounded,
			Live: true, Bounded: unbounded, FlushEvery: 32, Repo: repo,
		})
	}()

	if follow != "" {
		cur, err := dievent.Follow(repo, follow, dievent.TailOpts{})
		if err != nil {
			fatal(err)
		}
		// Stop following once the ingest finishes (or Ctrl-C fires),
		// with a short grace so the queued tail of the feed drains.
		fctx, fcancel := context.WithCancel(ctx)
		go func() {
			<-done
			time.Sleep(200 * time.Millisecond)
			fcancel()
		}()
		n := 0
		for {
			rec, err := cur.Next(fctx)
			if err != nil {
				break
			}
			fmt.Println(rec)
			n++
		}
		cur.Close()
		fmt.Printf("follow: %d rows\n", n)
	}

	<-done
	if runErr != nil {
		fatal(runErr)
	}
	if res.Interrupted {
		fmt.Printf("stream interrupted — finalized partial result\n")
	}
	fmt.Printf("stream: %d frames in %v (%s vision, %d records)\n",
		res.FramesAnalyzed, time.Since(start).Round(time.Millisecond), mode, repo.Len())
	if len(res.Phases) > 0 {
		fmt.Println("decoded dining phases:")
		for _, sp := range res.Phases {
			fmt.Printf("  %-10s frames [%d, %d)\n", sp.Phase, sp.Start, sp.End)
		}
	}
	fmt.Println(res.Summary.Digest)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dievent:", err)
	os.Exit(1)
}
