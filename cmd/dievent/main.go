// Command dievent runs the full DiEvent pipeline on a named scenario and
// prints the multilayer analysis digest: the look-at summary, dominance,
// overall-emotion statistics, eye-contact events and alerts.
//
// Usage:
//
//	dievent [flags]
//
//	-scenario prototype|dinner   event to analyse (default prototype)
//	-persons N                   dinner party size (default 4)
//	-frames N                    dinner length in frames (default 1500)
//	-enjoyment F                 dinner enjoyment bias in [0,1] (default 0.7)
//	-mode geometric|pixel        vision path (default geometric)
//	-max N                       analyse only the first N frames
//	-repo DIR                    persist the metadata repository to DIR
//	-segbytes N                  repository segment roll threshold in bytes
//	-seed N                      estimator noise seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/dievent"
)

func main() {
	var (
		scenario  = flag.String("scenario", "prototype", "prototype or dinner")
		persons   = flag.Int("persons", 4, "dinner party size")
		frames    = flag.Int("frames", 1500, "dinner length in frames")
		enjoyment = flag.Float64("enjoyment", 0.7, "dinner enjoyment in [0,1]")
		mode      = flag.String("mode", "geometric", "geometric or pixel")
		maxFrames = flag.Int("max", 0, "truncate the event to N frames (0 = all)")
		repoDir   = flag.String("repo", "", "persist metadata repository to this directory")
		segBytes  = flag.Int64("segbytes", 0, "repository segment roll threshold in bytes (0 = default)")
		seed      = flag.Int64("seed", 1, "noise seed")
	)
	flag.Parse()

	cfg := dievent.Config{
		MaxFrames: *maxFrames,
		RepoDir:   *repoDir,
		Gaze:      dievent.GazeOptions{Seed: *seed},
	}
	if *segBytes > 0 {
		cfg.RepoOptions = append(cfg.RepoOptions, dievent.WithSegmentSize(*segBytes))
	}
	switch *scenario {
	case "prototype":
		cfg.Scenario = dievent.PrototypeScenario()
	case "dinner":
		sc, err := dievent.DinnerScenario(dievent.DinnerOptions{
			Persons: *persons, Frames: *frames, Seed: *seed, Enjoyment: *enjoyment,
		})
		if err != nil {
			fatal(err)
		}
		cfg.Scenario = sc
	default:
		fatal(fmt.Errorf("unknown scenario %q", *scenario))
	}
	switch *mode {
	case "geometric":
		cfg.Mode = dievent.GeometricVision
	case "pixel":
		cfg.Mode = dievent.PixelVision
		if cfg.MaxFrames == 0 {
			cfg.MaxFrames = 100 // pixel vision is priced per frame
			fmt.Fprintln(os.Stderr, "note: pixel mode capped at 100 frames; raise with -max")
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	pipe, err := dievent.New(cfg)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res, err := pipe.Run()
	if err != nil {
		fatal(err)
	}
	defer res.Repo.Close()

	fmt.Println(res.Summary.Digest)
	fmt.Printf("alerts:\n")
	for _, a := range res.Layers.Alerts {
		fmt.Printf("  [%7v] %-16s %s\n", a.Time.Round(40*time.Millisecond), a.Kind, a.Detail)
	}
	fmt.Printf("\npipeline: %d frames in %v (%s vision)\n",
		res.FramesAnalyzed, time.Since(start).Round(time.Millisecond), *mode)
	for _, st := range res.Timings {
		fmt.Printf("  %-20s %v\n", st.Name, st.Duration.Round(time.Microsecond))
	}
	if *repoDir != "" {
		fmt.Printf("metadata repository: %d records in %s\n", res.Repo.Len(), *repoDir)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dievent:", err)
	os.Exit(1)
}
