// Command dievent-dataset exports an annotated synthetic dining-event
// dataset — multi-camera footage plus frame-accurate ground truth — the
// artefact the paper's conclusion plans to collect ("We are planning to
// collect and annotate a dataset customized for our task").
//
// Usage:
//
//	dievent-dataset -o DIR [-scenario prototype|dinner] [-frames N] [-stride N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/camera"
	"repro/internal/dataset"
	"repro/internal/scene"
	"repro/internal/video"
)

func main() {
	var (
		out       = flag.String("o", "", "output directory (required)")
		scenarioF = flag.String("scenario", "prototype", "prototype or dinner")
		persons   = flag.Int("persons", 4, "dinner party size")
		frames    = flag.Int("frames", 0, "truncate to N frames (0 = all)")
		stride    = flag.Int("stride", 1, "annotate every Nth frame")
		enjoyment = flag.Float64("enjoyment", 0.7, "dinner enjoyment in [0,1]")
		noise     = flag.Float64("noise", 2, "sensor noise sigma")
		seed      = flag.Int64("seed", 1, "generation seed")
		preview   = flag.Bool("preview", false, "write the first frame of each camera as PGM")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "dievent-dataset: -o is required")
		os.Exit(2)
	}

	var sc scene.Scenario
	var err error
	switch *scenarioF {
	case "prototype":
		sc = scene.PrototypeScenario()
	case "dinner":
		sc, err = scene.DinnerScenario(scene.DinnerOptions{
			Persons: *persons, Frames: max(*frames, 1500), Seed: *seed, Enjoyment: *enjoyment,
		})
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown scenario %q", *scenarioF))
	}
	rig, err := camera.PrototypeRig(sc.RoomW, sc.RoomD)
	if err != nil {
		fatal(err)
	}
	m, err := dataset.Export(*out, sc, rig, dataset.ExportOptions{
		Render:    video.RenderOptions{NoiseSigma: *noise},
		MaxFrames: *frames,
		Stride:    *stride,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("exported %q: %d frames × %d cameras at %.0f fps, %d annotations → %s\n",
		m.Name, m.Frames, len(m.Cameras), m.FPS, m.AnnotationCount, *out)
	fmt.Printf("participants: %v\n", m.Participants)
	fmt.Printf("query ground truth with: dieventql -repo %s/annotations \"label = 'true-eye-contact'\"\n", *out)

	if *preview {
		ds, err := dataset.Load(*out)
		if err != nil {
			fatal(err)
		}
		defer ds.Annotations.Close()
		for cam, frames := range ds.Footage {
			path := filepath.Join(*out, cam+"-frame0.pgm")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := frames[0].Pixels.WritePGM(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("preview: %s\n", path)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dievent-dataset:", err)
	os.Exit(1)
}
