// Command dievent-train trains the LBP+NN emotion classifier on the
// synthetic expressive-face corpus, reports the held-out confusion
// matrix, and optionally saves the model for later pipeline runs.
//
// Usage:
//
//	dievent-train [-per-label N] [-epochs N] [-hidden N] [-o model.dinn]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/emotion"
)

func main() {
	var (
		perLabel = flag.Int("per-label", 60, "training faces per emotion")
		epochs   = flag.Int("epochs", 60, "training epochs")
		hidden   = flag.Int("hidden", 48, "hidden layer width")
		out      = flag.String("o", "", "write the trained model to this file")
		seed     = flag.Int64("seed", 1, "dataset/init seed")
	)
	flag.Parse()

	ds := emotion.GenerateDataset(*perLabel, uint64(*seed))
	train, test := ds.Split(0.25)
	fmt.Printf("dataset: %d train / %d test faces across %d emotions\n",
		len(train.Faces), len(test.Faces), emotion.NumLabels)

	clf, err := emotion.NewClassifier(*hidden, *seed)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	hist, err := clf.Train(train, emotion.TrainOptions{
		Epochs: *epochs, Seed: *seed, LearningRate: 0.01,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trained in %v; loss %.4f → %.4f\n",
		time.Since(start).Round(time.Millisecond), hist[0], hist[len(hist)-1])

	m, err := clf.Evaluate(test)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("held-out accuracy: %.3f\n\n%s", m.Accuracy(), m)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := clf.Save(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("model written to %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dievent-train:", err)
	os.Exit(1)
}
