// Command dieventd serves the DiEvent multi-tenant ingest/query API
// (DESIGN.md §11): each tenant an isolated repository under -root, with
// admission control, per-tenant append quotas and disk limits, FOLLOW
// streaming with a pluggable backpressure policy, and graceful drain on
// SIGTERM/SIGINT.
//
// Usage:
//
//	dieventd -root /var/lib/dievent [-addr 127.0.0.1:8080] \
//	    [-max-inflight 256] [-append-rate 50000] [-append-burst 100000] \
//	    [-max-followers 64] [-max-disk-bytes 0] [-backpressure drop|spill] \
//	    [-idle-close 0] [-drain-timeout 30s]
//
// The chosen listen address is printed as "dieventd listening on ADDR"
// once the socket is bound (so -addr :0 is scriptable). On SIGTERM the
// server stops admitting, terminates followers with a drain envelope,
// waits for in-flight requests (bounded by -drain-timeout), seals and
// closes every tenant repository, and exits 0 — after which an offline
// fsck of every tenant directory is clean.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		root         = flag.String("root", "", "root directory for tenant repositories (required)")
		maxInflight  = flag.Int("max-inflight", 256, "bound on concurrently admitted requests")
		appendRate   = flag.Float64("append-rate", 50000, "per-tenant append quota, records/second")
		appendBurst  = flag.Int("append-burst", 0, "per-tenant append burst (default 2x rate)")
		maxFollowers = flag.Int("max-followers", 64, "per-tenant cap on open FOLLOW streams (-1 = unlimited)")
		maxDiskBytes = flag.Int64("max-disk-bytes", 0, "per-tenant disk quota in bytes, segments+spill (0 = unlimited)")
		backpressure = flag.String("backpressure", "drop", "follower overflow policy: drop (terminate with lagging) or spill (spill to disk within quota)")
		idleClose    = flag.Duration("idle-close", 0, "release a tenant's writer lease after this idle time (0 = never)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "bound on the SIGTERM drain sequence")
	)
	flag.Parse()
	if *root == "" {
		fmt.Fprintln(os.Stderr, "dieventd: -root is required")
		flag.Usage()
		os.Exit(2)
	}
	bp, err := service.ParseBackpressure(*backpressure)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dieventd: %v\n", err)
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "dieventd: ", log.LstdFlags|log.Lmicroseconds)
	svc, err := service.New(service.Config{
		Root:         *root,
		MaxInflight:  *maxInflight,
		AppendRate:   *appendRate,
		AppendBurst:  *appendBurst,
		MaxFollowers: *maxFollowers,
		MaxDiskBytes: *maxDiskBytes,
		Backpressure: bp,
		IdleClose:    *idleClose,
		Logf:         logger.Printf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dieventd: %v\n", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dieventd: %v\n", err)
		os.Exit(1)
	}
	// Stdout, unbuffered-by-newline: the e2e harness parses this line.
	fmt.Printf("dieventd listening on %s\n", ln.Addr())
	os.Stdout.Sync()

	httpSrv := &http.Server{Handler: svc}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		logger.Printf("received %v, draining (timeout %v)", sig, *drainTimeout)
	case err := <-serveErr:
		logger.Printf("serve failed: %v", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	start := time.Now()
	// Drain first (stops admitting, kills followers, closes tenants —
	// releasing every writer lease), then shut the listener down; the
	// order matters because Shutdown waits for active streams, which
	// only finish once Drain terminates them.
	drainErr := svc.Drain(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	if drainErr != nil {
		logger.Printf("drain failed after %v: %v", time.Since(start).Round(time.Millisecond), drainErr)
		os.Exit(1)
	}
	logger.Printf("drain complete in %v", time.Since(start).Round(time.Millisecond))
}
