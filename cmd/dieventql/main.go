// Command dieventql runs queries against a persisted DiEvent metadata
// repository — the paper's §II-E "rich query vocabulary" from the shell,
// executed by the planned, parallel query engine.
//
// Usage:
//
//	dieventql -repo DIR "label = 'eye-contact' AND person = 1"
//	dieventql -repo DIR "EXPLAIN label = 'happy' AND frame < 500"
//	dieventql -repo DIR -limit 0 "label = 'alert-negative-spike' FOLLOW"
//	dieventql -repo DIR -i          # interactive REPL
//
// A query ending in FOLLOW subscribes instead of scanning: matching
// history streams first (in append order), then the cursor blocks and
// yields matching records as they are appended — the repository's
// change-data-capture feed (DESIGN.md §10). -limit bounds the total
// rows (0 = follow until Ctrl-C). Ctrl-C during any query — a long
// scan or a FOLLOW — cancels just that query; in the REPL it returns
// to the prompt. -timeout puts a hard deadline on a one-shot query or
// FOLLOW (propagated into the engine via QueryOpts.Ctx); exceeding it
// exits 1 so scripts never hang on an idle subscription. On a
// read-only lease a FOLLOW ends cleanly (exit 0) once history is
// exhausted — there is no live feed without a writer — while a
// subscription the writer killed for lagging exits 1: the stream has
// a gap and downstream consumers must not treat it as complete.
//
//	dieventql -repo DIR -stats     # records + on-disk segment layout
//	dieventql -repo DIR -compact   # merge sealed segments, reclaim space
//	dieventql -repo DIR -fsck      # offline integrity check (exits 1 on damage)
//	dieventql -repo DIR -quarantine -stats   # open a damaged store degraded
//
// One-shot queries use statistics pushdown: the query is parsed first
// and the repository is opened with its filter (WithOpenFilter), so
// sealed segments whose statistics block — zone maps over frame/time,
// per-kind counts, label/person bloom filters, persisted in NNNNNN.sts
// sidecars at seal time — prove "no match here" are skipped without
// being decoded. The number of segments skipped is reported on stderr.
// Results are byte-identical to a full open (statistics only ever
// exclude conservatively and every survivor is re-checked).
//
// In the REPL, prefix any query with EXPLAIN to print its plan instead
// of executing it — plans include a "stats: pruned ..." step when
// segment statistics excluded whole position ranges; STATS prints
// repository and segment statistics (per-segment frame/time zone maps
// for segments with a verified statistics sidecar) plus the health
// report (quarantined segments, pending fault repairs); COMPACT merges
// the sealed segments of the store; "quit" exits.
//
// -fsck verifies the store without opening it: the manifest checksum,
// a strict decode of every sealed segment, each segment's statistics
// sidecar (decode, manifest CRC binding, contents vs a deterministic
// rebuild from the decoded records), and the active segment's valid
// prefix. Damage is listed per file — including which sealed segments
// a WithQuarantine open would isolate — and the exit status is
// non-zero so scripts can gate on it. Damaged sidecars are regenerated
// automatically on the next writable open.
//
// Queries, -stats and the REPL take the repository's shared read-only
// lease, so any number of them coexist (and none of them can wedge a
// later writer the way an idle exclusive lease would); -compact
// mutates the store and takes the exclusive writer lease. A repository
// currently held by a writer — e.g. a live ingesting pipeline —
// rejects both lease kinds with "repository locked" until the writer
// closes.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/metadata"
)

func main() {
	var (
		dir         = flag.String("repo", "", "repository directory (required)")
		stats       = flag.Bool("stats", false, "print repository statistics instead of querying")
		compact     = flag.Bool("compact", false, "compact the repository (merge sealed segments) and print stats")
		fsck        = flag.Bool("fsck", false, "verify the repository offline; exit non-zero on damage")
		quarantine  = flag.Bool("quarantine", false, "open in degraded mode: isolate corrupt sealed segments instead of refusing")
		limit       = flag.Int("limit", 50, "maximum rows to print (0 = all)")
		timeout     = flag.Duration("timeout", 0, "deadline for a one-shot query or FOLLOW (0 = none); exceeded ⇒ exit 1")
		interactive = flag.Bool("i", false, "interactive REPL")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "dieventql: -repo is required")
		os.Exit(2)
	}
	// -fsck never opens the repository: it verifies the files as they
	// sit on disk, which works even on damage strict Open refuses.
	if *fsck {
		os.Exit(runFsck(*dir))
	}
	// Queries, stats and the REPL only read: take the shared lease so
	// any number of them coexist and an idle REPL never wedges a
	// later writer. Only -compact mutates the store and needs the
	// exclusive writer lease.
	var opts []metadata.Option
	if !*compact {
		opts = append(opts, metadata.WithReadOnly())
	}
	if *quarantine {
		opts = append(opts, metadata.WithQuarantine())
	}
	// One-shot queries (not EXPLAIN, which wants the full plan visible)
	// push the predicate into the open itself: segments the statistics
	// block excludes are never even decoded. Parse failures fall through
	// to runQuery for a proper error message.
	if !*compact && !*stats && !*interactive {
		if q := strings.Join(flag.Args(), " "); q != "" {
			if _, isExplain := cutExplain(q); !isExplain {
				if expr, err := metadata.Parse(q); err == nil {
					opts = append(opts, metadata.WithOpenFilter(expr))
				}
			}
		}
	}
	repo, err := metadata.Open(*dir, opts...)
	if err != nil {
		fatal(err)
	}
	defer repo.Close()
	if st, err := repo.Stats(); err == nil && st.SkippedSegments > 0 {
		fmt.Fprintf(os.Stderr, "dieventql: statistics pushdown skipped %d of %d segment(s) at open\n",
			st.SkippedSegments, len(st.Segments))
	}

	switch {
	case *compact:
		if err := runCompact(repo); err != nil {
			fatal(err)
		}
	case *stats:
		if err := printStats(repo); err != nil {
			fatal(err)
		}
	case *interactive:
		repl(repo, *limit)
	default:
		q := strings.Join(flag.Args(), " ")
		if q == "" {
			fmt.Fprintln(os.Stderr, "dieventql: no query given (try: \"label = 'eye-contact'\" or -i)")
			os.Exit(2)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		if *timeout > 0 {
			// The deadline propagates into the engine through
			// QueryOpts.Ctx (and into Tail for FOLLOW), so a stuck scan
			// or an idle subscription ends deterministically: scripts
			// get exit 1 instead of a hang.
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		err := runQuery(ctx, os.Stdout, repo, q, *limit)
		stop()
		if err != nil {
			fatal(err)
		}
	}
}

// runQuery executes one line: EXPLAIN renders the plan; a trailing
// FOLLOW keyword turns the query into a live subscription (history,
// then new appends as they happen, until limit rows — 0 = forever — or
// Ctrl-C); anything else streams results through the planner's cursor,
// printing the first limit rows while counting the rest. The context
// cancels mid-flight execution (Ctrl-C) and returns cleanly.
func runQuery(ctx context.Context, w *os.File, repo *metadata.Repository, q string, limit int) error {
	if rest, ok := cutExplain(q); ok {
		plan, err := repo.Explain(rest, metadata.QueryOpts{})
		if err != nil {
			return err
		}
		fmt.Fprint(w, plan)
		return nil
	}
	expr, follow, err := metadata.ParseFollow(q)
	if err != nil {
		return err
	}
	if follow {
		return runFollow(ctx, w, repo, expr, limit)
	}
	it, err := repo.QueryIter(q, metadata.QueryOpts{Ctx: ctx})
	if err != nil {
		return err
	}
	defer it.Close()
	n := 0
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		if limit <= 0 || n < limit {
			fmt.Fprintln(w, rec)
		}
		n++
	}
	if err := it.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("-timeout exceeded after %d rows", n)
		}
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(w, "interrupted after %d rows\n", n)
			return nil
		}
		return err
	}
	if limit > 0 && n > limit {
		fmt.Fprintf(w, "… %d more rows (raise -limit)\n", n-limit)
	}
	fmt.Fprintf(w, "%d rows\n", n)
	return nil
}

// runFollow drives a QUERY ... FOLLOW subscription: matching history in
// ID order, then the live append feed, each record exactly once. On a
// read-only lease the live phase never fires (no writer in this
// process), so after the history the cursor ends with ErrTailEnded —
// reported as a clean end here, exit 0. A subscription the writer
// terminated for falling behind (ErrLagging) is a real failure: the
// stream has a gap, so the error propagates and the process exits 1,
// letting scripts gate on it.
func runFollow(ctx context.Context, w *os.File, repo *metadata.Repository, expr metadata.Expr, limit int) error {
	cur, err := repo.Tail(expr, metadata.TailOpts{})
	if err != nil {
		return err
	}
	defer cur.Close()
	n := 0
	for limit <= 0 || n < limit {
		rec, err := cur.Next(ctx)
		if err != nil {
			switch {
			case errors.Is(err, metadata.ErrTailEnded):
				fmt.Fprintf(w, "%d rows (read-only repository: history complete, no live feed)\n", n)
				return nil
			case errors.Is(err, context.DeadlineExceeded):
				return fmt.Errorf("follow: -timeout exceeded after %d rows", n)
			case errors.Is(err, context.Canceled):
				fmt.Fprintf(w, "interrupted after %d rows\n", n)
				return nil
			}
			return fmt.Errorf("follow after %d rows: %w", n, err)
		}
		fmt.Fprintln(w, rec)
		n++
	}
	fmt.Fprintf(w, "%d rows\n", n)
	return nil
}

// cutExplain strips a leading EXPLAIN keyword (case-insensitive).
func cutExplain(q string) (string, bool) {
	trimmed := strings.TrimSpace(q)
	if len(trimmed) >= 8 && strings.EqualFold(trimmed[:7], "explain") &&
		(trimmed[7] == ' ' || trimmed[7] == '\t') {
		return strings.TrimSpace(trimmed[7:]), true
	}
	return q, false
}

// repl reads queries from stdin until EOF or "quit".
func repl(repo *metadata.Repository, limit int) {
	fmt.Printf("dieventql REPL — %d records. EXPLAIN <query> shows a plan; STATS, COMPACT, quit.\n", repo.Len())
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for {
		fmt.Print("dieventql> ")
		if !sc.Scan() {
			fmt.Println()
			if err := sc.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "dieventql: reading input:", err)
			}
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit"):
			return
		case strings.EqualFold(line, "stats"):
			if err := printStats(repo); err != nil {
				fmt.Fprintln(os.Stderr, "dieventql:", err)
			}
		case strings.EqualFold(line, "compact"):
			if err := runCompact(repo); err != nil {
				if errors.Is(err, metadata.ErrReadOnly) {
					fmt.Fprintln(os.Stderr, "dieventql: the REPL holds a shared read-only lease; run `dieventql -repo DIR -compact` instead")
				} else {
					fmt.Fprintln(os.Stderr, "dieventql:", err)
				}
			}
		default:
			// Ctrl-C during a query (a long scan, a FOLLOW subscription)
			// cancels just that query and returns to the prompt; at the
			// prompt itself the default signal disposition applies.
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
			err := runQuery(ctx, os.Stdout, repo, line, limit)
			stop()
			if err != nil {
				fmt.Fprintln(os.Stderr, "dieventql:", err)
			}
		}
	}
}

func printStats(repo *metadata.Repository) error {
	st, err := repo.Stats()
	if err != nil {
		return err
	}
	byKind := map[string]int{}
	byLabel := map[string]int{}
	if err := repo.Scan(func(r metadata.Record) bool {
		byKind[r.Kind.String()]++
		byLabel[r.Label]++
		return true
	}); err != nil {
		return err
	}
	fmt.Printf("records: %d\n", st.Records)
	if len(st.Segments) > 0 {
		fmt.Printf("storage: %d bytes in %d segment(s)\n", st.DiskBytes, len(st.Segments))
		for _, s := range st.Segments {
			state := "active"
			if s.Sealed {
				state = "sealed"
			}
			fmt.Printf("  %-12s %-6s %9d bytes  %d records", s.Name, state, s.Bytes, s.Records)
			if s.Skipped {
				fmt.Print("  (skipped at open)")
			}
			fmt.Println()
			if s.HasStats && s.Records > 0 {
				fmt.Printf("    zone: frames [%d, %d], time [%v, %v]\n",
					s.MinFrame, s.MaxFrame, s.MinTime, s.MaxTime)
			}
		}
	}
	fmt.Println("by kind:")
	for k, n := range byKind {
		fmt.Printf("  %-14s %d\n", k, n)
	}
	fmt.Println("top labels:")
	printed := 0
	for l, n := range byLabel {
		if printed >= 10 {
			break
		}
		fmt.Printf("  %-22q %d\n", l, n)
		printed++
	}
	return printHealth(repo)
}

// printHealth renders the repository's degradation report: quarantined
// segments with their frame gaps, pending fault repairs, and any
// recovery actions the open performed.
func printHealth(repo *metadata.Repository) error {
	h, err := repo.Health()
	if err != nil {
		return err
	}
	if h.Degraded {
		fmt.Println("health: DEGRADED")
	} else {
		fmt.Println("health: ok")
	}
	for _, q := range h.Quarantined {
		fmt.Printf("  quarantined %-12s %d records, %d bytes lost: %s\n", q.Name, q.Records, q.Bytes, q.Err)
		if q.FrameGap != [2]int{} {
			fmt.Printf("    frame gap: %d .. %d\n", q.FrameGap[0], q.FrameGap[1])
		}
	}
	if h.WriteFault {
		fmt.Println("  write fault: next append rewrites the active segment")
	}
	if h.PendingDirSync {
		fmt.Println("  directory fsync pending: appends retry it before acknowledging")
	}
	if len(h.StatsMissing) > 0 {
		fmt.Printf("  statistics missing for %s (pruning disabled there; a writable open regenerates)\n",
			strings.Join(h.StatsMissing, ", "))
	}
	for _, act := range h.Recovery {
		fmt.Printf("  recovery: %s\n", act)
	}
	return nil
}

// runFsck verifies dir offline and returns the process exit status:
// 0 when every file checks out, 1 on damage.
func runFsck(dir string) int {
	rep, err := metadata.Fsck(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dieventql: fsck:", err)
		return 1
	}
	for _, s := range rep.Segments {
		state := "active"
		if s.Sealed {
			state = "sealed"
		} else if strings.HasSuffix(s.Name, ".sts") {
			state = "stats"
		}
		status := "ok"
		if s.Err != "" {
			status = s.Err
		}
		fmt.Printf("  %-12s %-6s %9d bytes  %6d records  %s\n", s.Name, state, s.Bytes, s.Records, status)
		if s.Note != "" {
			fmt.Printf("    note: %s\n", s.Note)
		}
	}
	if rep.Clean() {
		fmt.Printf("fsck: clean (%d records)\n", rep.Records)
		return 0
	}
	if q := rep.Quarantinable(); len(q) > 0 {
		fmt.Printf("fsck: damage found; quarantinable sealed segment(s): %s\n", strings.Join(q, ", "))
		fmt.Println("fsck: a WithQuarantine open isolates them and serves the surviving records")
	} else {
		fmt.Println("fsck: damage found")
	}
	return 1
}

// runCompact merges the repository's sealed segments, reporting the
// segment layout before and after.
func runCompact(repo *metadata.Repository) error {
	before, err := repo.Stats()
	if err != nil {
		return err
	}
	if err := repo.Compact(); err != nil {
		return err
	}
	after, err := repo.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("compacted: %d segment(s), %d bytes → %d segment(s), %d bytes\n",
		len(before.Segments), before.DiskBytes, len(after.Segments), after.DiskBytes)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dieventql:", err)
	os.Exit(1)
}
