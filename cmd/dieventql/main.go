// Command dieventql runs queries against a persisted DiEvent metadata
// repository — the paper's §II-E "rich query vocabulary" from the shell.
//
// Usage:
//
//	dieventql -repo DIR "label = 'eye-contact' AND person = 1"
//	dieventql -repo DIR -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/metadata"
)

func main() {
	var (
		dir   = flag.String("repo", "", "repository directory (required)")
		stats = flag.Bool("stats", false, "print repository statistics instead of querying")
		limit = flag.Int("limit", 50, "maximum rows to print (0 = all)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "dieventql: -repo is required")
		os.Exit(2)
	}
	repo, err := metadata.Open(*dir)
	if err != nil {
		fatal(err)
	}
	defer repo.Close()

	if *stats {
		printStats(repo)
		return
	}
	q := strings.Join(flag.Args(), " ")
	if q == "" {
		fmt.Fprintln(os.Stderr, "dieventql: no query given (try: \"label = 'eye-contact'\")")
		os.Exit(2)
	}
	recs, err := repo.Query(q)
	if err != nil {
		fatal(err)
	}
	for i, r := range recs {
		if *limit > 0 && i >= *limit {
			fmt.Printf("… %d more rows (raise -limit)\n", len(recs)-i)
			break
		}
		fmt.Println(r)
	}
	fmt.Printf("%d rows\n", len(recs))
}

func printStats(repo *metadata.Repository) {
	total := repo.Len()
	byKind := map[string]int{}
	byLabel := map[string]int{}
	repo.Scan(func(r metadata.Record) bool {
		byKind[r.Kind.String()]++
		byLabel[r.Label]++
		return true
	})
	fmt.Printf("records: %d\n", total)
	fmt.Println("by kind:")
	for k, n := range byKind {
		fmt.Printf("  %-14s %d\n", k, n)
	}
	fmt.Println("top labels:")
	printed := 0
	for l, n := range byLabel {
		if printed >= 10 {
			break
		}
		fmt.Printf("  %-22q %d\n", l, n)
		printed++
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dieventql:", err)
	os.Exit(1)
}
